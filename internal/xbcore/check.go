package xbcore

import (
	"fmt"

	"xbc/internal/isa"
)

// This file implements the cycle-level invariant checker behind
// Config.Check. After every committed XB it verifies the cheap local
// invariants (block quota, pointer offsets, the touched entry's bank
// masks), and every sweepEvery commits — plus once at end of stream — it
// sweeps the whole cache and XBTB:
//
//   - no XB exceeds the 16-uop quota (Config.Quota);
//   - a variant's resident chunks sit in mutually distinct banks with
//     consistent order/content (bank-mask consistency, section 3.4);
//   - every valid XBTB successor pointer resolves into the live cache: the
//     ending address has an entry, the variant exists, and the OFFSET does
//     not reach past the variant's stored length;
//   - head extension preserves reverse-order storage: a case-2 insert must
//     leave the old block as an exact reverse-prefix of the extended one
//     (checked at insert time in Cache.Insert, surfaced here).
//
// The first violation ends the run: RunChecked returns it; bare Run panics
// with it (frontend.RunSafe converts that panic back into an error).
type checker struct {
	cfg        Config
	cache      *Cache
	xbtb       *XBTB
	commits    uint64
	sweepEvery uint64
}

func newChecker(cfg Config, cache *Cache, xbtb *XBTB) *checker {
	return &checker{cfg: cfg, cache: cache, xbtb: xbtb, sweepEvery: 1024}
}

// afterCommit runs the per-XB checks and the periodic full sweep.
func (k *checker) afterCommit(cur *dynXB, e *Entry) error {
	k.commits++
	if err := k.checkXB(cur); err != nil {
		return err
	}
	if e != nil {
		if err := k.checkEntry(e); err != nil {
			return err
		}
	}
	if err := k.cache.CheckErr(); err != nil {
		return err
	}
	if err := k.checkVariant(cur); err != nil {
		return err
	}
	if k.commits%k.sweepEvery == 0 {
		return k.sweep()
	}
	return nil
}

// checkXB validates the committed dynamic block itself.
func (k *checker) checkXB(cur *dynXB) error {
	if cur.uops < 1 || cur.uops > k.cfg.Quota {
		return fmt.Errorf("xbcore: check: XB ending %#x has %d uops (quota %d)", cur.endIP, cur.uops, k.cfg.Quota)
	}
	if len(cur.rseq) != cur.uops {
		return fmt.Errorf("xbcore: check: XB ending %#x has rseq length %d for %d uops", cur.endIP, len(cur.rseq), cur.uops)
	}
	return nil
}

// checkVariant verifies bank-mask consistency for the variant holding the
// just-committed block: its resident chunks must occupy mutually distinct
// banks with matching order and content.
func (k *checker) checkVariant(cur *dynXB) error {
	c := k.cache
	ei := c.entryOf(cur.endIP)
	if ei < 0 {
		return nil // block not resident (e.g. build without insert success)
	}
	set := c.setOf(cur.endIP)
	for vi := c.entries[ei].head; vi >= 0; vi = c.variants[vi].next {
		rlen := int(c.variants[vi].rlen)
		if rlen > k.cfg.Quota {
			return fmt.Errorf("xbcore: check: variant of %#x stores %d uops (quota %d)", cur.endIP, rlen, k.cfg.Quota)
		}
		refs := c.vrefs(vi)
		banks := uint(0)
		for o := 0; o < c.ordersOf(rlen) && o < len(refs); o++ {
			ref := refs[o]
			if ref.bank < 0 {
				continue
			}
			if int(ref.bank) >= k.cfg.Banks || int(ref.way) >= k.cfg.Ways {
				return fmt.Errorf("xbcore: check: variant of %#x references bank %d way %d", cur.endIP, ref.bank, ref.way)
			}
			if !c.lineMatches(c.lineIndex(set, int(ref.bank), int(ref.way)), cur.endIP, o, c.chunk(vi, o)) {
				continue // stale reference: legal, repaired lazily by set search
			}
			if banks&(1<<uint(ref.bank)) != 0 {
				return fmt.Errorf("xbcore: check: variant of %#x has two resident chunks in bank %d (mask %04b)", cur.endIP, ref.bank, banks)
			}
			banks |= 1 << uint(ref.bank)
		}
	}
	return nil
}

// checkEntry validates the successor pointers of one XBTB entry.
func (k *checker) checkEntry(e *Entry) error {
	if err := k.checkPtr(e.xbIP, "taken", e.Taken, 1); err != nil {
		return err
	}
	if err := k.checkPtr(e.xbIP, "fall", e.Fall, 1); err != nil {
		return err
	}
	// PromotedTo's offset is the tail length past a promoted branch and may
	// legally be zero when the branch ends the combined block.
	return k.checkPtr(e.xbIP, "promoted-to", e.PromotedTo, 0)
}

// checkPtr verifies one XBTB pointer resolves into the live cache.
func (k *checker) checkPtr(from isa.Addr, kind string, p Ptr, minOffset int) error {
	if !p.Valid {
		return nil
	}
	if int(p.Offset) < minOffset || int(p.Offset) > k.cfg.Quota {
		return fmt.Errorf("xbcore: check: %s pointer of %#x has offset %d (quota %d)", kind, from, p.Offset, k.cfg.Quota)
	}
	ei := k.cache.entryOf(p.EndIP)
	if ei < 0 {
		return fmt.Errorf("xbcore: check: %s pointer of %#x names %#x, which has no cache entry", kind, from, p.EndIP)
	}
	vi := k.cache.variantByID(ei, p.Variant)
	if vi < 0 {
		return fmt.Errorf("xbcore: check: %s pointer of %#x names dead variant %d of %#x", kind, from, p.Variant, p.EndIP)
	}
	if rlen := int(k.cache.variants[vi].rlen); int(p.Offset) > rlen {
		return fmt.Errorf("xbcore: check: %s pointer of %#x reaches %d uops into variant %d of %#x, which stores %d",
			kind, from, p.Offset, p.Variant, p.EndIP, rlen)
	}
	return nil
}

// sweep runs the full-structure checks.
func (k *checker) sweep() error {
	if err := k.cache.CheckInvariants(); err != nil {
		return err
	}
	for i := range k.xbtb.entries {
		e := &k.xbtb.entries[i]
		if !e.valid {
			continue
		}
		if err := k.checkEntry(e); err != nil {
			return err
		}
	}
	return nil
}
