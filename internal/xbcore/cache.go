package xbcore

import (
	"fmt"

	"xbc/internal/isa"
)

// This file implements the XBC storage: the physical banked data array
// (sections 3.2 and 3.10) and the logical extended-block layer on top of
// it (variants, chunk sharing, the XFU insert cases of section 3.3).
//
// Physical model: each set has Banks x Ways lines of BankUops uop slots.
// A stored XB occupies one line per "order": order 0 (the primary line)
// holds the last BankUops uops, order 1 the preceding ones, and so on —
// the reverse-order storage of section 3.4, which lets a block grow at its
// head without moving anything or changing its identity.
//
// Logical model: an entry (keyed by the XB's ending address) owns one or
// more variants — distinct uop sequences sharing that ending address (the
// paper's complex XBs). A variant records its uop sequence from the end
// (rseq) and, per order, which line it believes holds that chunk. Lines
// are shared between variants whenever the chunk content is identical,
// which is what makes the XBC (nearly) redundancy-free. Eviction never
// chases pointers: a variant discovers damage lazily when a fetch finds a
// line no longer matching, and set search (section 3.9) repairs the
// reference if the chunk was merely re-placed.

// line is one physical bank line.
type line struct {
	valid bool
	endIP isa.Addr
	order uint8
	count uint8
	uops  []isa.UopID // count uops in reverse order; capacity = BankUops
	stamp uint64
}

func (l *line) matches(endIP isa.Addr, order int, chunk []isa.UopID) bool {
	if !l.valid || l.endIP != endIP || int(l.order) != order || int(l.count) != len(chunk) {
		return false
	}
	for i, u := range chunk {
		if l.uops[i] != u {
			return false
		}
	}
	return true
}

// lineRef locates a line within a known set.
type lineRef struct {
	bank int8
	way  int8
}

// variant is one logical XB: a uop sequence ending at the entry's address.
type variant struct {
	id        uint32
	rseq      []isa.UopID // uops from the end (reverse program order)
	refs      []lineRef   // per order, the believed line location
	conflicts int         // dynamic-placement pressure counter
}

// orders returns how many lines the variant spans.
func (v *variant) orders(bankUops int) int {
	return (len(v.rseq) + bankUops - 1) / bankUops
}

// chunk returns the uops of the given order (reverse order slice).
func (v *variant) chunk(order, bankUops int) []isa.UopID {
	lo := order * bankUops
	hi := lo + bankUops
	if hi > len(v.rseq) {
		hi = len(v.rseq)
	}
	return v.rseq[lo:hi]
}

// entry groups the variants sharing one ending address.
type entry struct {
	endIP    isa.Addr
	variants []*variant
	nextID   uint32
}

func (e *entry) variantByID(id uint32) *variant {
	for _, v := range e.variants {
		if v.id == id {
			return v
		}
	}
	return nil
}

// Cache is the XBC data array plus the logical XB layer.
type Cache struct {
	cfg     Config
	lines   []line // sets * banks * ways
	entries map[isa.Addr]*entry
	tick    uint64

	// Incrementally maintained occupancy (kept current by ensureChunk,
	// the only place line content changes) so Fragmentation and
	// Utilization are O(1) instead of sweeping the data array.
	validLines int
	usedSlots  int

	// Reusable scratch, sized once at construction, so the insert and
	// metrics paths never allocate per call: materialize's per-order
	// residency flags and Redundancy's copy-count map.
	residentScratch []bool
	copiesScratch   map[isa.UopID]int

	// checkErr is the first violation recorded by the insert-time checks
	// (Config.Check only); the run's invariant checker surfaces it.
	checkErr error

	// Statistics.
	Allocs       uint64
	Evictions    uint64
	Shares       uint64 // chunk allocations satisfied by an existing line
	SetSearches  uint64 // successful set-search repairs
	ComplexXBs   uint64 // case-3 inserts
	Extensions   uint64 // case-2 inserts
	Containments uint64 // case-1 inserts
	Replacements uint64 // dynamic-placement line moves
}

// NewCache builds an empty XBC.
func NewCache(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Sets * cfg.Banks * cfg.Ways
	c := &Cache{
		cfg:             cfg,
		lines:           make([]line, n),
		entries:         make(map[isa.Addr]*entry),
		residentScratch: make([]bool, cfg.MaxOrders()),
		copiesScratch:   make(map[isa.UopID]int),
	}
	// One flat backing array gives every line its full-capacity uop slice
	// up front, so ensureChunk rewrites lines without ever allocating.
	backing := make([]isa.UopID, n*cfg.BankUops)
	for i := range c.lines {
		c.lines[i].uops = backing[i*cfg.BankUops : i*cfg.BankUops : (i+1)*cfg.BankUops]
	}
	return c, nil
}

// setOf derives the set index from a XB ending address.
func (c *Cache) setOf(endIP isa.Addr) int {
	return int(uint64(endIP>>1) & uint64(c.cfg.Sets-1))
}

// lineAt returns the physical line for (set, bank, way).
func (c *Cache) lineAt(set, bank, way int) *line {
	return &c.lines[(set*c.cfg.Banks+bank)*c.cfg.Ways+way]
}

// stampFor biases LRU stamps so that within one access the head-most
// (highest-order) lines age first — the head-line eviction preference of
// section 3.10.
func (c *Cache) stampFor(order int) uint64 {
	return c.tick<<3 + uint64(7-order)
}

// findLine scans the set for a line holding the given chunk identity,
// skipping banks in excludeBanks (a variant's chunks must sit in distinct
// banks, and duplicate chunk copies can exist in several banks).
func (c *Cache) findLine(set int, endIP isa.Addr, order int, chunk []isa.UopID, excludeBanks uint) (lineRef, bool) {
	for b := 0; b < c.cfg.Banks; b++ {
		if excludeBanks&(1<<uint(b)) != 0 {
			continue
		}
		for w := 0; w < c.cfg.Ways; w++ {
			if c.lineAt(set, b, w).matches(endIP, order, chunk) {
				return lineRef{bank: int8(b), way: int8(w)}, true
			}
		}
	}
	return lineRef{}, false
}

// ensureChunk makes the chunk resident: it shares an existing identical
// line when possible, otherwise allocates one. usedBanks are the banks the
// same variant already occupies (a XB must spread over distinct banks so
// it can be fetched in one cycle); avoidBanks are banks to dodge for
// bank-conflict reasons (smart placement). Returns the line location.
func (c *Cache) ensureChunk(set int, endIP isa.Addr, order int, chunk []isa.UopID, usedBanks, avoidBanks uint, share bool) (lineRef, uint) {
	if ref, ok := c.findLine(set, endIP, order, chunk, usedBanks); ok && share {
		// Shared with an existing variant — the redundancy-free property.
		// (Copies in banks this variant already uses are skipped; if none
		// remains, a second copy is placed, a rare bounded redundancy at
		// chunk granularity.)
		c.Shares++
		return ref, usedBanks | 1<<uint(ref.bank)
	}
	ref := c.pickVictim(set, usedBanks, avoidBanks)
	ln := c.lineAt(set, int(ref.bank), int(ref.way))
	if ln.valid {
		c.Evictions++
		c.usedSlots -= int(ln.count)
	} else {
		c.validLines++
	}
	c.usedSlots += len(chunk)
	c.Allocs++
	c.tick++
	buf := append(ln.uops[:0], chunk...)
	*ln = line{valid: true, endIP: endIP, order: uint8(order), count: uint8(len(chunk)), stamp: c.stampFor(order), uops: buf}
	return ref, usedBanks | 1<<uint(ref.bank)
}

// pickVictim chooses where to place a new chunk: banks not in usedBanks
// (hard constraint), preferring invalid ways, then banks outside
// avoidBanks (smart placement), then global LRU.
func (c *Cache) pickVictim(set int, usedBanks, avoidBanks uint) lineRef {
	best := lineRef{bank: -1}
	bestScore := ^uint64(0)
	considered := false
	for pass := 0; pass < 2; pass++ {
		for b := 0; b < c.cfg.Banks; b++ {
			if usedBanks&(1<<uint(b)) != 0 {
				continue
			}
			if c.cfg.SmartPlacement && pass == 0 && avoidBanks&(1<<uint(b)) != 0 {
				continue
			}
			for w := 0; w < c.cfg.Ways; w++ {
				ln := c.lineAt(set, b, w)
				score := ln.stamp
				if !ln.valid {
					score = 0
				}
				if !considered || score < bestScore {
					best = lineRef{bank: int8(b), way: int8(w)}
					bestScore = score
					considered = true
				}
			}
		}
		if considered || !c.cfg.SmartPlacement {
			break
		}
		// All non-used banks were in avoidBanks; retry without avoidance.
	}
	if best.bank < 0 {
		// A XB wider than the bank count would hit this; geometry
		// validation (quota == banks*bankUops) makes it unreachable.
		panic("xbcore: no bank available for placement")
	}
	return best
}

// residentBanksFrom returns the bank mask of the variant's resident,
// matching chunks with order >= fromOrder. Placement and repair of lower
// orders must avoid these banks so the whole variant stays fetchable in
// one cycle.
func (c *Cache) residentBanksFrom(set int, endIP isa.Addr, v *variant, fromOrder int) uint {
	banks := uint(0)
	for o := fromOrder; o < v.orders(c.cfg.BankUops) && o < len(v.refs); o++ {
		ref := v.refs[o]
		if ref.bank < 0 {
			continue
		}
		if c.lineAt(set, int(ref.bank), int(ref.way)).matches(endIP, o, v.chunk(o, c.cfg.BankUops)) {
			banks |= 1 << uint(ref.bank)
		}
	}
	return banks
}

// commonReversePrefix returns how many leading (from-the-end) uops two
// sequences share.
func commonReversePrefix(a, b []isa.UopID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// InsertKind reports which of section 3.3's cases an insert hit.
type InsertKind int

const (
	InsertNew       InsertKind = iota // no tag match: fresh XB
	InsertContained                   // case 1: existing XB contains the new one
	InsertExtended                    // case 2: new XB extends an existing one at its head
	InsertComplex                     // case 3: same suffix, different prefix
)

// String names the insert case.
func (k InsertKind) String() string {
	switch k {
	case InsertNew:
		return "new"
	case InsertContained:
		return "contained"
	case InsertExtended:
		return "extended"
	case InsertComplex:
		return "complex"
	default:
		return "unknown"
	}
}

// Insert stores the XB with ending address endIP and reverse-order uop
// sequence rseq, implementing the build algorithm of section 3.3. It
// returns the variant the sequence now lives in, the insert case, and
// whether every needed line was already resident (which is what allows the
// frontend to switch back to delivery mode).
func (c *Cache) Insert(endIP isa.Addr, rseq []isa.UopID, avoidBanks uint) (id uint32, kind InsertKind, wasResident bool) {
	if len(rseq) == 0 || len(rseq) > c.cfg.Quota {
		panic("xbcore: insert of empty or over-quota XB")
	}
	set := c.setOf(endIP)
	e := c.entries[endIP]
	if e == nil {
		e = &entry{endIP: endIP}
		c.entries[endIP] = e
	}

	// Look for a related variant.
	var bestV *variant
	bestCommon := 0
	for _, v := range e.variants {
		common := commonReversePrefix(rseq, v.rseq)
		if common > bestCommon || (bestV == nil && common > 0) {
			bestV, bestCommon = v, common
		}
	}

	switch {
	case bestV != nil && bestCommon == len(rseq) && len(bestV.rseq) >= len(rseq):
		// Case 1: the existing XB contains (or equals) the new one. Only
		// repair lines that were lost since.
		c.Containments++
		resident := c.materialize(set, e, bestV, len(rseq), avoidBanks, true)
		return bestV.id, InsertContained, resident
	case bestV != nil && bestCommon == len(bestV.rseq):
		// Case 2: the new XB extends the existing one at its head. The
		// reverse-order storage means nothing moves: rewrite the boundary
		// chunk (it gains uops) and add head chunks.
		c.Extensions++
		var oldRseq []isa.UopID
		if c.cfg.Check {
			oldRseq = append(oldRseq, bestV.rseq...)
		}
		bestV.rseq = append(bestV.rseq[:0], rseq...)
		if c.cfg.Check && c.checkErr == nil {
			if kept := commonReversePrefix(bestV.rseq, oldRseq); kept != len(oldRseq) {
				c.checkErr = fmt.Errorf("xbcore: check: head extension of %#x moved stored uops (kept %d of %d)",
					endIP, kept, len(oldRseq))
			}
		}
		resident := c.materialize(set, e, bestV, len(rseq), avoidBanks, true)
		_ = resident // extension always writes at least the boundary chunk
		return bestV.id, InsertExtended, false
	case bestV != nil && bestCommon > 0 && c.cfg.ComplexXB:
		// Case 3: same suffix, different prefix — a complex XB. The new
		// variant shares every full chunk inside the common suffix.
		c.ComplexXBs++
		v := c.newVariant(e, rseq)
		c.materialize(set, e, v, len(rseq), avoidBanks, true)
		return v.id, InsertComplex, false
	default:
		// Without complex-XB support, variants never share chunk lines,
		// reintroducing (bounded) same-ending-address redundancy.
		v := c.newVariant(e, rseq)
		c.materialize(set, e, v, len(rseq), avoidBanks, c.cfg.ComplexXB)
		return v.id, InsertNew, false
	}
}

// CheckErr returns the first violation the insert-time checks recorded.
// Always nil unless Config.Check is set.
func (c *Cache) CheckErr() error { return c.checkErr }

func (c *Cache) newVariant(e *entry, rseq []isa.UopID) *variant {
	// Full-quota capacity up front: head extensions (case 2) rewrite the
	// sequence in place without ever growing the allocation.
	v := &variant{
		id:   e.nextID,
		rseq: append(make([]isa.UopID, 0, c.cfg.Quota), rseq...),
		refs: make([]lineRef, 0, c.cfg.MaxOrders()),
	}
	e.nextID++
	e.variants = append(e.variants, v)
	return v
}

// materialize ensures the first upTo uops of the variant are resident,
// sharing or allocating lines chunk by chunk. It returns whether
// everything was already resident (no allocation happened).
func (c *Cache) materialize(set int, e *entry, v *variant, upTo int, avoidBanks uint, share bool) bool {
	orders := (upTo + c.cfg.BankUops - 1) / c.cfg.BankUops
	for len(v.refs) < v.orders(c.cfg.BankUops) {
		v.refs = append(v.refs, lineRef{bank: -1})
	}
	// First pass: find which orders are already resident and which banks
	// they pin. Resident chunks beyond the repaired range pin their banks
	// too, so the variant never ends up with two chunks in one bank.
	usedBanks := c.residentBanksFrom(set, e.endIP, v, orders)
	resident := c.residentScratch[:orders]
	for o := range resident {
		resident[o] = false
	}
	allResident := true
	for o := 0; o < orders; o++ {
		chunk := v.chunk(o, c.cfg.BankUops)
		ref := v.refs[o]
		if ref.bank >= 0 && usedBanks&(1<<uint(ref.bank)) == 0 &&
			c.lineAt(set, int(ref.bank), int(ref.way)).matches(e.endIP, o, chunk) {
			resident[o] = true
			usedBanks |= 1 << uint(ref.bank)
			continue
		}
		if fr, ok := c.findLine(set, e.endIP, o, chunk, usedBanks); ok && share {
			v.refs[o] = fr
			resident[o] = true
			usedBanks |= 1 << uint(fr.bank)
			c.Shares++
			continue
		}
		allResident = false
	}
	if allResident {
		// Refresh LRU so a rebuilt-but-resident XB stays warm.
		c.tick++
		for o := 0; o < orders; o++ {
			ref := v.refs[o]
			c.lineAt(set, int(ref.bank), int(ref.way)).stamp = c.stampFor(o)
		}
		return true
	}
	// Second pass: place the missing chunks.
	for o := 0; o < orders; o++ {
		if resident[o] {
			continue
		}
		chunk := v.chunk(o, c.cfg.BankUops)
		ref, nowUsed := c.ensureChunk(set, e.endIP, o, chunk, usedBanks, avoidBanks, share)
		usedBanks = nowUsed
		v.refs[o] = ref
	}
	return false
}
