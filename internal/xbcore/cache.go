package xbcore

import (
	"fmt"

	"xbc/internal/isa"
)

// This file implements the XBC storage: the physical banked data array
// (sections 3.2 and 3.10) and the logical extended-block layer on top of
// it (variants, chunk sharing, the XFU insert cases of section 3.3).
//
// Physical model: each set has Banks x Ways lines of BankUops uop slots.
// A stored XB occupies one line per "order": order 0 (the primary line)
// holds the last BankUops uops, order 1 the preceding ones, and so on —
// the reverse-order storage of section 3.4, which lets a block grow at its
// head without moving anything or changing its identity.
//
// Logical model: an entry (keyed by the XB's ending address) owns one or
// more variants — distinct uop sequences sharing that ending address (the
// paper's complex XBs). A variant records its uop sequence from the end
// (rseq) and, per order, which line it believes holds that chunk. Lines
// are shared between variants whenever the chunk content is identical,
// which is what makes the XBC (nearly) redundancy-free. Eviction never
// chases pointers: a variant discovers damage lazily when a fetch finds a
// line no longer matching, and set search (section 3.9) repairs the
// reference if the chunk was merely re-placed.
//
// Data layout: the simulated geometry IS the data layout. The physical
// array is four parallel flat slices — tag, packed valid/order/count
// metadata, LRU stamp, and one uop arena — indexed by
// (set*Banks+bank)*Ways+way, with line i's uop slots at [i*BankUops,
// (i+1)*BankUops) in the arena; a line identity check is two word loads
// plus the chunk compare. The logical layer is three append-only pools
// (entry records, variant records, and per-variant rseq/ref slabs carved
// out of two arenas) reached through an open-addressed hash index, so the
// steady state allocates nothing: entries and variants are never freed,
// pool indices stay valid for the lifetime of the cache, and the XBTB
// stores them inside its pointers (Ptr.vref) so delivery-mode fetches walk
// straight into the arena instead of re-deriving the location per fetch.

// lineRef locates a line within a known set.
type lineRef struct {
	bank int8
	way  int8
}

// Line metadata packs valid, order and count into one word so a line
// identity compare is a tag load plus one meta load. An invalid line has
// meta 0, which no metaFor value can equal.
const (
	lineValid      = uint32(1) << 31
	lineOrderShift = 16
	lineCountMask  = uint32(1)<<lineOrderShift - 1
)

// metaFor encodes the identity word of a valid line holding count uops of
// the given order.
func metaFor(order, count int) uint32 {
	return lineValid | uint32(order)<<lineOrderShift | uint32(count)
}

// lineHdr is the identity and recency header of one physical line.
type lineHdr struct {
	tag   isa.Addr
	stamp uint64
	meta  uint32
}

// entryRec groups the variants sharing one ending address. Variants hang
// off a head/tail-linked list in insertion order (the order the old
// variant slice preserved, which the insert-case selection depends on).
type entryRec struct {
	endIP  isa.Addr
	head   int32 // first variant index, -1 when none
	tail   int32 // last variant index, for O(1) append
	nextID uint32
}

// variantRec is one logical XB: a uop sequence ending at the owning
// entry's address. Its storage lives in the cache arenas: the reverse
// -order uop sequence occupies the fixed Quota-sized slab
// rseqArena[vi*Quota:] (rlen uops used), and the per-order line references
// occupy refsArena[vi*MaxOrders:] (nrefs used).
type variantRec struct {
	next      int32 // next variant of the same entry, -1 at the tail
	entry     int32 // owning entry index
	id        uint32
	rlen      int32 // stored uop count
	nrefs     int32 // initialized line references
	conflicts int32 // dynamic-placement pressure counter
}

// Cache is the XBC data array plus the logical XB layer.
type Cache struct {
	cfg       Config
	quota     int // == cfg.Quota, hoisted off the hot paths
	maxOrders int // == cfg.MaxOrders()

	// Physical data array: flat slices, one element per line. Headers
	// (tag, packed meta, LRU stamp) are interleaved per line so an
	// identity check touches one cache line instead of three parallel
	// arrays; uop slots live in their own arena.
	lineHdrs []lineHdr
	lineUops []isa.UopID // line i's slots at [i*BankUops, (i+1)*BankUops)
	tick     uint64

	// Logical layer: append-only pools plus the open-addressed index.
	entries   []entryRec
	variants  []variantRec
	rseqArena []isa.UopID // Quota uops per variant
	refsArena []lineRef   // MaxOrders refs per variant

	// Open-addressed endIP -> entry-index map (linear probing, no
	// deletion). idxVals[i] < 0 marks an empty slot.
	idxKeys []isa.Addr
	idxVals []int32

	// Incrementally maintained occupancy (kept current by ensureChunk,
	// the only place line content changes) so Fragmentation and
	// Utilization are O(1) instead of sweeping the data array.
	validLines int
	usedSlots  int

	// Reusable scratch, sized once, so the insert and metrics paths never
	// allocate per call: materialize's per-order residency flags,
	// Redundancy's copy-counting buffer (lazily sized to the data array),
	// and CheckInvariants' sorted-address walk.
	residentScratch []bool
	redScratch      []isa.UopID
	ipsScratch      []isa.Addr

	// checkErr is the first violation recorded by the insert-time checks
	// (Config.Check only); the run's invariant checker surfaces it.
	checkErr error

	// Statistics.
	Allocs       uint64
	Evictions    uint64
	Shares       uint64 // chunk allocations satisfied by an existing line
	SetSearches  uint64 // successful set-search repairs
	ComplexXBs   uint64 // case-3 inserts
	Extensions   uint64 // case-2 inserts
	Containments uint64 // case-1 inserts
	Replacements uint64 // dynamic-placement line moves
}

// seedEntries is the initial pool capacity: small enough that short-lived
// caches stay cheap, large enough that a full run reaches steady state
// after a handful of amortized doublings.
const seedEntries = 256

// NewCache builds an empty XBC.
func NewCache(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Sets * cfg.Banks * cfg.Ways
	c := &Cache{
		cfg:             cfg,
		quota:           cfg.Quota,
		maxOrders:       cfg.MaxOrders(),
		lineHdrs:        make([]lineHdr, n),
		lineUops:        make([]isa.UopID, n*cfg.BankUops),
		entries:         make([]entryRec, 0, seedEntries),
		variants:        make([]variantRec, 0, seedEntries),
		rseqArena:       make([]isa.UopID, 0, seedEntries*cfg.Quota),
		refsArena:       make([]lineRef, 0, seedEntries*cfg.MaxOrders()),
		idxKeys:         make([]isa.Addr, 2*seedEntries),
		idxVals:         make([]int32, 2*seedEntries),
		residentScratch: make([]bool, cfg.MaxOrders()),
	}
	for i := range c.idxVals {
		c.idxVals[i] = -1
	}
	return c, nil
}

// hashAddr mixes an ending address for the open-addressed index. The
// multiplier is the 64-bit golden ratio; the xor-fold spreads its high
// bits into the masked low ones.
func hashAddr(a isa.Addr) uint64 {
	h := uint64(a) * 0x9e3779b97f4a7c15
	return h ^ h>>29
}

// entryOf returns the entry index for endIP, or -1.
func (c *Cache) entryOf(endIP isa.Addr) int32 {
	mask := uint64(len(c.idxVals) - 1)
	for i := hashAddr(endIP) & mask; ; i = (i + 1) & mask {
		ei := c.idxVals[i]
		if ei < 0 {
			return -1
		}
		if c.idxKeys[i] == endIP {
			return ei
		}
	}
}

// ensureEntry returns the entry index for endIP, appending a fresh record
// (and growing the index past 3/4 load) if none exists.
func (c *Cache) ensureEntry(endIP isa.Addr) int32 {
	if ei := c.entryOf(endIP); ei >= 0 {
		return ei
	}
	if 4*(len(c.entries)+1) > 3*len(c.idxVals) {
		c.growIndex()
	}
	ei := int32(len(c.entries))
	c.entries = append(c.entries, entryRec{endIP: endIP, head: -1, tail: -1})
	c.idxInsert(endIP, ei)
	return ei
}

func (c *Cache) idxInsert(endIP isa.Addr, ei int32) {
	mask := uint64(len(c.idxVals) - 1)
	i := hashAddr(endIP) & mask
	for c.idxVals[i] >= 0 {
		i = (i + 1) & mask
	}
	c.idxKeys[i] = endIP
	c.idxVals[i] = ei
}

func (c *Cache) growIndex() {
	oldKeys, oldVals := c.idxKeys, c.idxVals
	n := 2 * len(c.idxVals)
	c.idxKeys = make([]isa.Addr, n)
	c.idxVals = make([]int32, n)
	for i := range c.idxVals {
		c.idxVals[i] = -1
	}
	for i, v := range oldVals {
		if v >= 0 {
			c.idxInsert(oldKeys[i], v)
		}
	}
}

// vrseq returns the variant's stored reverse-order uop sequence.
func (c *Cache) vrseq(vi int32) []isa.UopID {
	off := int(vi) * c.quota
	return c.rseqArena[off : off+int(c.variants[vi].rlen)]
}

// vrefs returns the variant's initialized per-order line references; the
// slice aliases the arena, so writes through it persist.
func (c *Cache) vrefs(vi int32) []lineRef {
	off := int(vi) * c.maxOrders
	return c.refsArena[off : off+int(c.variants[vi].nrefs)]
}

// chunk returns the uops of the given order of a variant (reverse-order
// slice).
func (c *Cache) chunk(vi int32, order int) []isa.UopID {
	lo := order * c.cfg.BankUops
	hi := lo + c.cfg.BankUops
	if n := int(c.variants[vi].rlen); hi > n {
		hi = n
	}
	off := int(vi) * c.quota
	return c.rseqArena[off+lo : off+hi]
}

// ordersOf returns how many lines a sequence of n uops spans.
func (c *Cache) ordersOf(n int) int {
	return (n + c.cfg.BankUops - 1) / c.cfg.BankUops
}

// variantByID walks the entry's variant list for the given id, returning
// the variant index or -1. Ids are unique within an entry and never
// reused, so the walk order cannot matter for the result.
func (c *Cache) variantByID(eidx int32, id uint32) int32 {
	for vi := c.entries[eidx].head; vi >= 0; vi = c.variants[vi].next {
		if c.variants[vi].id == id {
			return vi
		}
	}
	return -1
}

// setOf derives the set index from a XB ending address.
func (c *Cache) setOf(endIP isa.Addr) int {
	return int(uint64(endIP>>1) & uint64(c.cfg.Sets-1))
}

// lineIndex returns the flat index of the physical line (set, bank, way).
func (c *Cache) lineIndex(set, bank, way int) int {
	return (set*c.cfg.Banks+bank)*c.cfg.Ways + way
}

// lineMatches reports whether line li currently holds the given chunk
// identity: same ending address, order, and content.
func (c *Cache) lineMatches(li int, endIP isa.Addr, order int, chunk []isa.UopID) bool {
	h := &c.lineHdrs[li]
	if h.tag != endIP || h.meta != metaFor(order, len(chunk)) {
		return false
	}
	off := li * c.cfg.BankUops
	uops := c.lineUops[off : off+len(chunk)]
	for i, u := range chunk {
		if uops[i] != u {
			return false
		}
	}
	return true
}

// stampFor biases LRU stamps so that within one access the head-most
// (highest-order) lines age first — the head-line eviction preference of
// section 3.10.
func (c *Cache) stampFor(order int) uint64 {
	return c.tick<<3 + uint64(7-order)
}

// findLine scans the set for a line holding the given chunk identity,
// skipping banks in excludeBanks (a variant's chunks must sit in distinct
// banks, and duplicate chunk copies can exist in several banks).
func (c *Cache) findLine(set int, endIP isa.Addr, order int, chunk []isa.UopID, excludeBanks uint) (lineRef, bool) {
	for b := 0; b < c.cfg.Banks; b++ {
		if excludeBanks&(1<<uint(b)) != 0 {
			continue
		}
		for w := 0; w < c.cfg.Ways; w++ {
			if c.lineMatches(c.lineIndex(set, b, w), endIP, order, chunk) {
				return lineRef{bank: int8(b), way: int8(w)}, true
			}
		}
	}
	return lineRef{}, false
}

// ensureChunk makes the chunk resident: it shares an existing identical
// line when possible, otherwise allocates one. usedBanks are the banks the
// same variant already occupies (a XB must spread over distinct banks so
// it can be fetched in one cycle); avoidBanks are banks to dodge for
// bank-conflict reasons (smart placement). Returns the line location.
func (c *Cache) ensureChunk(set int, endIP isa.Addr, order int, chunk []isa.UopID, usedBanks, avoidBanks uint, share bool) (lineRef, uint) {
	if ref, ok := c.findLine(set, endIP, order, chunk, usedBanks); ok && share {
		// Shared with an existing variant — the redundancy-free property.
		// (Copies in banks this variant already uses are skipped; if none
		// remains, a second copy is placed, a rare bounded redundancy at
		// chunk granularity.)
		c.Shares++
		return ref, usedBanks | 1<<uint(ref.bank)
	}
	ref := c.pickVictim(set, usedBanks, avoidBanks)
	li := c.lineIndex(set, int(ref.bank), int(ref.way))
	h := &c.lineHdrs[li]
	if h.meta&lineValid != 0 {
		c.Evictions++
		c.usedSlots -= int(h.meta & lineCountMask)
	} else {
		c.validLines++
	}
	c.usedSlots += len(chunk)
	c.Allocs++
	c.tick++
	h.tag = endIP
	h.meta = metaFor(order, len(chunk))
	h.stamp = c.stampFor(order)
	copy(c.lineUops[li*c.cfg.BankUops:], chunk)
	return ref, usedBanks | 1<<uint(ref.bank)
}

// swapLines switches the full content of two physical lines (tag, meta,
// stamp, uop slots) — the dynamic-placement line switch of section 3.10.
// Occupancy totals are unchanged by construction.
func (c *Cache) swapLines(li, lj int) {
	c.lineHdrs[li], c.lineHdrs[lj] = c.lineHdrs[lj], c.lineHdrs[li]
	bu := c.cfg.BankUops
	a := c.lineUops[li*bu : li*bu+bu]
	b := c.lineUops[lj*bu : lj*bu+bu]
	for k := range a {
		a[k], b[k] = b[k], a[k]
	}
}

// pickVictim chooses where to place a new chunk: banks not in usedBanks
// (hard constraint), preferring invalid ways, then banks outside
// avoidBanks (smart placement), then global LRU.
func (c *Cache) pickVictim(set int, usedBanks, avoidBanks uint) lineRef {
	best := lineRef{bank: -1}
	bestScore := ^uint64(0)
	considered := false
	for pass := 0; pass < 2; pass++ {
		for b := 0; b < c.cfg.Banks; b++ {
			if usedBanks&(1<<uint(b)) != 0 {
				continue
			}
			if c.cfg.SmartPlacement && pass == 0 && avoidBanks&(1<<uint(b)) != 0 {
				continue
			}
			for w := 0; w < c.cfg.Ways; w++ {
				h := &c.lineHdrs[c.lineIndex(set, b, w)]
				score := h.stamp
				if h.meta&lineValid == 0 {
					score = 0
				}
				if !considered || score < bestScore {
					best = lineRef{bank: int8(b), way: int8(w)}
					bestScore = score
					considered = true
				}
			}
		}
		if considered || !c.cfg.SmartPlacement {
			break
		}
		// All non-used banks were in avoidBanks; retry without avoidance.
	}
	if best.bank < 0 {
		// A XB wider than the bank count would hit this; geometry
		// validation (quota == banks*bankUops) makes it unreachable.
		panic("xbcore: no bank available for placement")
	}
	return best
}

// residentBanksFrom returns the bank mask of the variant's resident,
// matching chunks with order >= fromOrder. Placement and repair of lower
// orders must avoid these banks so the whole variant stays fetchable in
// one cycle.
func (c *Cache) residentBanksFrom(set int, endIP isa.Addr, vi int32, fromOrder int) uint {
	orders := c.ordersOf(int(c.variants[vi].rlen))
	refs := c.vrefs(vi)
	banks := uint(0)
	for o := fromOrder; o < orders && o < len(refs); o++ {
		ref := refs[o]
		if ref.bank < 0 {
			continue
		}
		if c.lineMatches(c.lineIndex(set, int(ref.bank), int(ref.way)), endIP, o, c.chunk(vi, o)) {
			banks |= 1 << uint(ref.bank)
		}
	}
	return banks
}

// commonReversePrefix returns how many leading (from-the-end) uops two
// sequences share.
func commonReversePrefix(a, b []isa.UopID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// InsertKind reports which of section 3.3's cases an insert hit.
type InsertKind int

const (
	InsertNew       InsertKind = iota // no tag match: fresh XB
	InsertContained                   // case 1: existing XB contains the new one
	InsertExtended                    // case 2: new XB extends an existing one at its head
	InsertComplex                     // case 3: same suffix, different prefix
)

// String names the insert case.
func (k InsertKind) String() string {
	switch k {
	case InsertNew:
		return "new"
	case InsertContained:
		return "contained"
	case InsertExtended:
		return "extended"
	case InsertComplex:
		return "complex"
	default:
		return "unknown"
	}
}

// Insert stores the XB with ending address endIP and reverse-order uop
// sequence rseq, implementing the build algorithm of section 3.3. It
// returns the variant the sequence now lives in, the insert case, and
// whether every needed line was already resident (which is what allows the
// frontend to switch back to delivery mode). rseq must not alias the
// cache's own storage (frontends pass their per-run cut scratch).
func (c *Cache) Insert(endIP isa.Addr, rseq []isa.UopID, avoidBanks uint) (id uint32, kind InsertKind, wasResident bool) {
	if len(rseq) == 0 || len(rseq) > c.quota {
		panic("xbcore: insert of empty or over-quota XB")
	}
	set := c.setOf(endIP)
	eidx := c.ensureEntry(endIP)

	// Look for a related variant, in insertion order.
	var bestVi int32 = -1
	bestCommon := 0
	for vi := c.entries[eidx].head; vi >= 0; vi = c.variants[vi].next {
		common := commonReversePrefix(rseq, c.vrseq(vi))
		if common > bestCommon || (bestVi < 0 && common > 0) {
			bestVi, bestCommon = vi, common
		}
	}

	switch {
	case bestVi >= 0 && bestCommon == len(rseq) && int(c.variants[bestVi].rlen) >= len(rseq):
		// Case 1: the existing XB contains (or equals) the new one. Only
		// repair lines that were lost since.
		c.Containments++
		resident := c.materialize(set, eidx, bestVi, len(rseq), avoidBanks, true)
		return c.variants[bestVi].id, InsertContained, resident
	case bestVi >= 0 && bestCommon == int(c.variants[bestVi].rlen):
		// Case 2: the new XB extends the existing one at its head. The
		// reverse-order storage means nothing moves: rewrite the boundary
		// chunk (it gains uops) and add head chunks.
		c.Extensions++
		var oldRseq []isa.UopID
		if c.cfg.Check {
			oldRseq = append(oldRseq, c.vrseq(bestVi)...)
		}
		copy(c.rseqArena[int(bestVi)*c.quota:], rseq)
		c.variants[bestVi].rlen = int32(len(rseq))
		if c.cfg.Check && c.checkErr == nil {
			if kept := commonReversePrefix(c.vrseq(bestVi), oldRseq); kept != len(oldRseq) {
				c.checkErr = fmt.Errorf("xbcore: check: head extension of %#x moved stored uops (kept %d of %d)",
					endIP, kept, len(oldRseq))
			}
		}
		resident := c.materialize(set, eidx, bestVi, len(rseq), avoidBanks, true)
		_ = resident // extension always writes at least the boundary chunk
		return c.variants[bestVi].id, InsertExtended, false
	case bestVi >= 0 && bestCommon > 0 && c.cfg.ComplexXB:
		// Case 3: same suffix, different prefix — a complex XB. The new
		// variant shares every full chunk inside the common suffix.
		c.ComplexXBs++
		vi := c.newVariant(eidx, rseq)
		c.materialize(set, eidx, vi, len(rseq), avoidBanks, true)
		return c.variants[vi].id, InsertComplex, false
	default:
		// Without complex-XB support, variants never share chunk lines,
		// reintroducing (bounded) same-ending-address redundancy.
		vi := c.newVariant(eidx, rseq)
		c.materialize(set, eidx, vi, len(rseq), avoidBanks, c.cfg.ComplexXB)
		return c.variants[vi].id, InsertNew, false
	}
}

// CheckErr returns the first violation the insert-time checks recorded.
// Always nil unless Config.Check is set.
func (c *Cache) CheckErr() error { return c.checkErr }

// newVariant appends a variant record and carves its fixed-size rseq and
// refs slabs out of the arenas; growth is amortized doubling, so a warm
// cache appends without allocating.
func (c *Cache) newVariant(eidx int32, rseq []isa.UopID) int32 {
	vi := int32(len(c.variants))
	e := &c.entries[eidx]
	c.variants = append(c.variants, variantRec{next: -1, entry: eidx, id: e.nextID, rlen: int32(len(rseq))})
	c.rseqArena = grown(c.rseqArena, c.quota)
	copy(c.rseqArena[int(vi)*c.quota:], rseq)
	c.refsArena = grown(c.refsArena, c.maxOrders)
	e.nextID++
	if e.head < 0 {
		e.head = vi
	} else {
		c.variants[e.tail].next = vi
	}
	e.tail = vi
	return vi
}

// grown extends s by n elements (zero or stale values; callers overwrite
// before reading), doubling the backing array when capacity runs out.
func grown[T any](s []T, n int) []T {
	if len(s)+n <= cap(s) {
		return s[: len(s)+n]
	}
	ns := make([]T, len(s)+n, 2*(len(s)+n))
	copy(ns, s)
	return ns
}

// materialize ensures the first upTo uops of the variant are resident,
// sharing or allocating lines chunk by chunk. It returns whether
// everything was already resident (no allocation happened).
func (c *Cache) materialize(set int, eidx, vi int32, upTo int, avoidBanks uint, share bool) bool {
	endIP := c.entries[eidx].endIP
	orders := c.ordersOf(upTo)
	if total := int32(c.ordersOf(int(c.variants[vi].rlen))); c.variants[vi].nrefs < total {
		refs := c.refsArena[int(vi)*c.maxOrders:]
		for i := c.variants[vi].nrefs; i < total; i++ {
			refs[i] = lineRef{bank: -1}
		}
		c.variants[vi].nrefs = total
	}
	refs := c.vrefs(vi)
	// First pass: find which orders are already resident and which banks
	// they pin. Resident chunks beyond the repaired range pin their banks
	// too, so the variant never ends up with two chunks in one bank.
	usedBanks := c.residentBanksFrom(set, endIP, vi, orders)
	resident := c.residentScratch[:orders]
	for o := range resident {
		resident[o] = false
	}
	allResident := true
	for o := 0; o < orders; o++ {
		chunk := c.chunk(vi, o)
		ref := refs[o]
		if ref.bank >= 0 && usedBanks&(1<<uint(ref.bank)) == 0 &&
			c.lineMatches(c.lineIndex(set, int(ref.bank), int(ref.way)), endIP, o, chunk) {
			resident[o] = true
			usedBanks |= 1 << uint(ref.bank)
			continue
		}
		if fr, ok := c.findLine(set, endIP, o, chunk, usedBanks); ok && share {
			refs[o] = fr
			resident[o] = true
			usedBanks |= 1 << uint(fr.bank)
			c.Shares++
			continue
		}
		allResident = false
	}
	if allResident {
		// Refresh LRU so a rebuilt-but-resident XB stays warm.
		c.tick++
		for o := 0; o < orders; o++ {
			ref := refs[o]
			c.lineHdrs[c.lineIndex(set, int(ref.bank), int(ref.way))].stamp = c.stampFor(o)
		}
		return true
	}
	// Second pass: place the missing chunks.
	for o := 0; o < orders; o++ {
		if resident[o] {
			continue
		}
		chunk := c.chunk(vi, o)
		ref, nowUsed := c.ensureChunk(set, endIP, o, chunk, usedBanks, avoidBanks, share)
		usedBanks = nowUsed
		refs[o] = ref
	}
	return false
}
