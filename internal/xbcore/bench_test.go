package xbcore

import (
	"testing"

	"xbc/internal/frontend"
	"xbc/internal/isa"
	"xbc/internal/program"
	"xbc/internal/trace"
)

func benchStream(b *testing.B, uops uint64) *trace.Stream {
	b.Helper()
	spec := program.DefaultSpec("xbc-bench", 42)
	spec.Functions = 80
	s, err := trace.Generate(spec, uops)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkInsert measures the XFU insert path (all cases mixed).
func BenchmarkInsert(b *testing.B) {
	c, _ := NewCache(DefaultConfig(32 * 1024))
	seqs := make([][]isa.UopID, 256)
	for i := range seqs {
		n := 1 + i%16
		endIP := isa.Addr(0x1000 + i*64)
		seqs[i] = rseqFor(endIP, n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := seqs[i%len(seqs)]
		c.Insert(s[0].IP(), s, 0)
	}
}

// BenchmarkFetch measures the delivery-path access (hit case).
func BenchmarkFetch(b *testing.B) {
	c, _ := NewCache(DefaultConfig(32 * 1024))
	rseq := rseqFor(0x4000, 12)
	id, _, _ := c.Insert(0x4000, rseq, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Fetch(0x4000, id, 12, rseq).OK {
			b.Fatal("fetch missed")
		}
	}
}

// BenchmarkCutXB measures the dynamic block cutter.
func BenchmarkCutXB(b *testing.B) {
	s := benchStream(b, 100_000)
	b.ResetTimer()
	i := 0
	for n := 0; n < b.N; n++ {
		xb := cutXB(s.Recs, i, 16, noProm)
		i = xb.end
		if i >= len(s.Recs) {
			i = 0
		}
	}
}

// BenchmarkRunEndToEnd measures whole-frontend simulation throughput.
func BenchmarkRunEndToEnd(b *testing.B) {
	s := benchStream(b, 200_000)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		fe := New(DefaultConfig(32*1024), frontend.DefaultConfig())
		s.Reset()
		m := fe.Run(s)
		if m.Uops != s.Uops() {
			b.Fatal("dropped uops")
		}
	}
	b.ReportMetric(float64(s.Uops())*float64(b.N)/b.Elapsed().Seconds(), "uops/s")
}

// BenchmarkXBTBTrain measures the promotion counter path.
func BenchmarkXBTBTrain(b *testing.B) {
	cfg := DefaultConfig(32 * 1024)
	x := NewXBTB(cfg)
	e := x.Ensure(0x100, isa.CondBranch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Train(e, i%8 != 0, cfg)
	}
}
