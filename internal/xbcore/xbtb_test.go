package xbcore

import (
	"testing"

	"xbc/internal/isa"
)

func TestXBTBEnsureLookup(t *testing.T) {
	x := NewXBTB(DefaultConfig(1024))
	if _, ok := x.Lookup(0x100); ok {
		t.Fatal("cold lookup hit")
	}
	e := x.Ensure(0x100, isa.CondBranch)
	if e.Class != isa.CondBranch || e.Counter != 64 {
		t.Fatalf("fresh entry wrong: %+v", e)
	}
	got, ok := x.Lookup(0x100)
	if !ok || got != e {
		t.Fatal("lookup after ensure failed")
	}
	// Ensure again returns the same entry.
	if again := x.Ensure(0x100, isa.CondBranch); again != e {
		t.Fatal("ensure allocated a duplicate")
	}
}

func TestXBTBClassUpgrade(t *testing.T) {
	x := NewXBTB(DefaultConfig(1024))
	e := x.Ensure(0x100, isa.Seq)
	if got := x.Ensure(0x100, isa.CondBranch); got != e || e.Class != isa.CondBranch {
		t.Fatal("quota-cut entry did not upgrade to branch class")
	}
	// But a real class never downgrades to Seq.
	x.Ensure(0x100, isa.Seq)
	if e.Class != isa.CondBranch {
		t.Fatal("class downgraded")
	}
}

func TestXBTBLRUEviction(t *testing.T) {
	cfg := DefaultConfig(1024)
	cfg.XBTBSets = 1
	cfg.XBTBWays = 2
	x := NewXBTB(cfg)
	x.Ensure(0x2, isa.CondBranch)
	x.Ensure(0x4, isa.CondBranch)
	x.Lookup(0x2) // refresh
	x.Ensure(0x6, isa.CondBranch)
	if _, ok := x.Lookup(0x4); ok {
		t.Fatal("LRU entry survived")
	}
	if _, ok := x.Lookup(0x2); !ok {
		t.Fatal("MRU entry evicted")
	}
}

// trainRun feeds n identical outcomes.
func trainRun(x *XBTB, e *Entry, taken bool, n int, cfg Config) (promoted bool) {
	for i := 0; i < n; i++ {
		p, _ := x.Train(e, taken, cfg)
		promoted = promoted || p
	}
	return promoted
}

func TestPromotionRequiresMonotonicRun(t *testing.T) {
	cfg := DefaultConfig(1024)
	x := NewXBTB(cfg)
	e := x.Ensure(0x100, isa.CondBranch)
	// 200 taken in a row: must promote (counter saturates and the run
	// gate passes).
	if !trainRun(x, e, true, 200, cfg) {
		t.Fatal("monotonic branch did not promote")
	}
	if !e.Promoted || !e.PromotedTaken {
		t.Fatalf("promotion state wrong: %+v", e)
	}
}

func TestPromotionNotTakenDirection(t *testing.T) {
	cfg := DefaultConfig(1024)
	x := NewXBTB(cfg)
	e := x.Ensure(0x200, isa.CondBranch)
	if !trainRun(x, e, false, 200, cfg) {
		t.Fatal("monotonic not-taken branch did not promote")
	}
	if !e.Promoted || e.PromotedTaken {
		t.Fatalf("promotion direction wrong: %+v", e)
	}
}

func TestMediumBiasLoopDoesNotPromote(t *testing.T) {
	// A trip-20 loop (taken 19, not-taken 1, repeating) saturates the
	// counter but never achieves the 96-long monotonic run; it must not
	// promote.
	cfg := DefaultConfig(1024)
	x := NewXBTB(cfg)
	e := x.Ensure(0x300, isa.CondBranch)
	for rep := 0; rep < 100; rep++ {
		if trainRun(x, e, true, 19, cfg) {
			t.Fatal("trip-20 loop promoted")
		}
		if p, _ := x.Train(e, false, cfg); p {
			t.Fatal("trip-20 loop promoted on exit")
		}
	}
	if e.Promoted {
		t.Fatal("trip-20 loop ended up promoted")
	}
}

func TestDepromotionOnViolations(t *testing.T) {
	cfg := DefaultConfig(1024) // DemoteSlack = 3
	x := NewXBTB(cfg)
	e := x.Ensure(0x400, isa.CondBranch)
	trainRun(x, e, true, 200, cfg)
	if !e.Promoted {
		t.Fatal("setup failed")
	}
	// Three consecutive violations exhaust the budget.
	dep := false
	for i := 0; i < int(cfg.DemoteSlack); i++ {
		_, d := x.Train(e, false, cfg)
		dep = dep || d
	}
	if !dep || e.Promoted {
		t.Fatalf("de-promotion did not happen: %+v", e)
	}
	if e.Counter != 64 {
		t.Fatalf("counter not reset after de-promotion: %d", e.Counter)
	}
	if x.Depromotions != 1 {
		t.Fatalf("depromotion counter = %d", x.Depromotions)
	}
}

func TestViolationBudgetReplenishes(t *testing.T) {
	cfg := DefaultConfig(1024)
	x := NewXBTB(cfg)
	e := x.Ensure(0x500, isa.CondBranch)
	trainRun(x, e, true, 200, cfg)
	// Spend 2 of 3 budget, then conform for 64 to replenish, then 2 more
	// violations must still not de-promote.
	x.Train(e, false, cfg)
	x.Train(e, false, cfg)
	trainRun(x, e, true, 80, cfg)
	x.Train(e, false, cfg)
	x.Train(e, false, cfg)
	if !e.Promoted {
		t.Fatal("budget did not replenish after a conforming run")
	}
}

func TestPromotedDir(t *testing.T) {
	cfg := DefaultConfig(1024)
	x := NewXBTB(cfg)
	if _, ok := x.PromotedDir(0x100); ok {
		t.Fatal("phantom promotion")
	}
	e := x.Ensure(0x100, isa.CondBranch)
	trainRun(x, e, true, 200, cfg)
	dir, ok := x.PromotedDir(0x100)
	if !ok || !dir {
		t.Fatalf("PromotedDir = %v,%v", dir, ok)
	}
}

func TestTrainDisabledPromotion(t *testing.T) {
	cfg := DefaultConfig(1024)
	cfg.Promotion = false
	x := NewXBTB(cfg)
	e := x.Ensure(0x100, isa.CondBranch)
	if trainRun(x, e, true, 300, cfg) || e.Promoted {
		t.Fatal("promotion happened while disabled")
	}
	if e.Counter != 127 {
		t.Fatalf("counter should still saturate: %d", e.Counter)
	}
}

func TestNonCondNeverPromotes(t *testing.T) {
	cfg := DefaultConfig(1024)
	x := NewXBTB(cfg)
	e := x.Ensure(0x100, isa.Return)
	if trainRun(x, e, true, 300, cfg) {
		t.Fatal("a return-ending XB promoted")
	}
}

func TestPtrMatches(t *testing.T) {
	p := Ptr{EndIP: 0x100, Variant: 2, Offset: 7, Valid: true}
	if !p.Matches(0x100, 7) {
		t.Fatal("exact match failed")
	}
	if p.Matches(0x100, 8) || p.Matches(0x104, 7) {
		t.Fatal("mismatch accepted")
	}
	if (Ptr{EndIP: 0x100, Offset: 7}).Matches(0x100, 7) {
		t.Fatal("invalid pointer matched")
	}
}

func TestXiBTBCascade(t *testing.T) {
	x := NewXiBTB(8, 6)
	if _, ok := x.Predict(0x10); ok {
		t.Fatal("cold hit")
	}
	a := Ptr{EndIP: 0xA00, Offset: 4, Valid: true}
	x.Update(0x10, a)
	if got, ok := x.Predict(0x10); !ok || got != a {
		t.Fatalf("predict = %+v,%v", got, ok)
	}
	// Alternating targets become predictable through the history level.
	b := Ptr{EndIP: 0xB00, Offset: 6, Valid: true}
	correct, total := 0, 0
	for i := 0; i < 2000; i++ {
		want := a
		if i%2 == 1 {
			want = b
		}
		got, ok := x.Predict(0x10)
		if i > 1000 {
			total++
			if ok && got == want {
				correct++
			}
		}
		x.Update(0x10, want)
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Fatalf("alternating accuracy %.2f", acc)
	}
}

func TestXRSB(t *testing.T) {
	r := NewXRSB(2)
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3) // wraps, drops 1
	if r.Depth() != 2 {
		t.Fatalf("depth = %d", r.Depth())
	}
	if got, ok := r.Pop(); !ok || got != 3 {
		t.Fatalf("got %v,%v", got, ok)
	}
	if got, ok := r.Pop(); !ok || got != 2 {
		t.Fatalf("got %v,%v", got, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("stack should be empty")
	}
}
