package xbcore

import (
	"xbc/internal/isa"
	"xbc/internal/trace"
)

// dynXB is one dynamic extended block: a run of committed instructions cut
// at the next XB end condition (conditional branch, indirect branch,
// return, call, or the 16-uop quota), with promotion applied — a promoted
// conditional branch that follows its promoted direction does not cut
// (section 3.8), joining the two blocks exactly as the combined XB the
// fill unit would store.
type dynXB struct {
	start, end int // record index range [start, end)
	endIP      isa.Addr
	uops       int
	class      isa.Class // isa.Seq for a pure quota cut (single successor)
	taken      bool      // outcome of the ending branch
	rseq       []isa.UopID

	endPromoted bool // ending conditional branch is promoted
	violated    bool // ... and this execution went against the promoted direction

	inner []promObs // promoted branches traversed without cutting
}

// promObs is one promoted-branch traversal observed inside a XB; its bias
// counter keeps training (section 3.8).
type promObs struct {
	ip    isa.Addr
	taken bool
	cum   int // cumulative uops from the block's entry up to and including the branch
}

// promQuery reports the promotion state of the conditional branch at ip.
type promQuery func(ip isa.Addr) (dir, promoted bool)

// clampUops bounds a record's uop count into [1, min(MaxUopsPerInst,
// quota)]. Well-formed streams are unaffected; hostile records (zero or
// oversized counts, e.g. from corrupt trace input) degrade into a legal
// count instead of producing empty or over-quota blocks, which would
// otherwise panic the fill unit or stall the cut loop.
func clampUops(r trace.Rec, quota int) int {
	n := int(r.NumUops)
	if n < 1 {
		n = 1
	}
	if n > isa.MaxUopsPerInst {
		n = isa.MaxUopsPerInst
	}
	if n > quota {
		n = quota
	}
	return n
}

// cutXB cuts the next dynamic XB from recs starting at index i, honouring
// the quota and the current promotion state.
func cutXB(recs []trace.Rec, i, quota int, promoted promQuery) dynXB {
	var xb dynXB
	cutXBInto(&xb, recs, i, quota, promoted)
	return xb
}

// cutXBInto is cutXB with caller-owned scratch storage: the rseq and inner
// buffers of xb are truncated and reused, so a run loop that threads one
// dynXB through every iteration cuts blocks without allocating once warm.
// The filled xb must not be retained across the next cutXBInto call.
//
//xbc:hot
func cutXBInto(xb *dynXB, recs []trace.Rec, i, quota int, promoted promQuery) {
	// Field-wise reset: a composite-literal assignment copies a full
	// temporary dynXB through the stack on every block.
	xb.start, xb.end = i, 0
	xb.endIP = 0
	xb.uops = 0
	xb.class = 0
	xb.taken = false
	xb.rseq = xb.rseq[:0]
	xb.endPromoted = false
	xb.violated = false
	xb.inner = xb.inner[:0]
	j := i
	for j < len(recs) {
		r := recs[j]
		n := clampUops(r, quota)
		if xb.uops+n > quota {
			// Quota cut before r. The block's identity comes from its
			// last instruction.
			xb.end = j
			last := recs[j-1]
			xb.endIP = last.IP
			if last.Class == isa.CondBranch {
				// Only a promoted on-path branch can sit last without
				// having cut; the block ends on it because of the quota.
				xb.class = isa.CondBranch
				xb.taken = last.Taken
				xb.endPromoted = true
				// Its traversal was recorded in inner; keep it there for
				// training consistency and also mark the ending.
			} else {
				xb.class = isa.Seq
			}
			xb.buildRseq(recs, quota)
			return
		}
		xb.uops += n
		j++
		if !r.Class.EndsXB() {
			continue
		}
		if r.Class == isa.CondBranch {
			if dir, ok := promoted(r.IP); ok {
				if r.Taken == dir {
					// Promoted and on-path: the branch does not cut.
					xb.inner = append(xb.inner, promObs{ip: r.IP, taken: r.Taken, cum: xb.uops})
					continue
				}
				// Promotion violated: the block ends here and the fetch
				// engine, which assumed the promoted path, re-steers.
				xb.end = j
				xb.endIP = r.IP
				xb.class = r.Class
				xb.taken = r.Taken
				xb.endPromoted = true
				xb.violated = true
				xb.buildRseq(recs, quota)
				return
			}
		}
		xb.end = j
		xb.endIP = r.IP
		xb.class = r.Class
		xb.taken = r.Taken
		xb.buildRseq(recs, quota)
		return
	}
	// Stream exhausted mid-block.
	xb.end = j
	if j > i {
		last := recs[j-1]
		xb.endIP = last.IP
		xb.class = isa.Seq
	}
	xb.buildRseq(recs, quota)
}

// buildRseq fills the reverse-order uop identity sequence, using the same
// clamped per-record uop counts as the cut loop so len(rseq) == uops. The
// caller's existing rseq buffer is reused when its capacity suffices, and
// each slot is written exactly once: a record's uop identities are
// consecutive (isa.Uop packs the slot index into the low bits), so the
// inner loop is a descending counter, not a re-encode per uop.
//
//xbc:hot
func (xb *dynXB) buildRseq(recs []trace.Rec, quota int) {
	if cap(xb.rseq) < xb.uops {
		//xbc:ignore hotalloc capacity-guarded warm-up; amortized to one allocation per run
		xb.rseq = make([]isa.UopID, 0, quota)
	}
	xb.rseq = xb.rseq[:xb.uops]
	k := 0
	for r := xb.end - 1; r >= xb.start; r-- {
		n := clampUops(recs[r], quota)
		id := isa.Uop(recs[r].IP, n-1)
		for u := n - 1; u >= 0; u-- {
			xb.rseq[k] = id
			id--
			k++
		}
	}
}
