package xbcore

import (
	"xbc/internal/bpred"
	"xbc/internal/frontend"
	"xbc/internal/isa"
	"xbc/internal/trace"
)

// Frontend is the XBC-based instruction supply of Figure 6: an IC/decoder
// path that feeds both the renamer (build mode) and the XFU fill unit, an
// XBC reached only through the XBTB, and a decoupling queue to the
// renamer. It replays a committed stream XB by XB:
//
//   - in delivery mode the XBTB chain supplies pointers to the next XBs,
//     the XBP (GSHARE) picks between taken/fall-through pointers, the
//     XiBTB supplies indirect successors and the XRSB return successors;
//     mispredictions charge a re-steer penalty; pointer misses and stale
//     pointers (misfetches) switch to build mode, since the XBC cannot be
//     looked up by target address (section 3.5);
//   - in build mode uops come from the IC path while the XFU assembles
//     XBs into the XBC and wires XBTB pointers; finding the block already
//     resident switches back to delivery.
type Frontend struct {
	cfg   Config
	fecfg frontend.Config
}

// New returns an XBC frontend with the given cache and timing
// configuration.
func New(cfg Config, fecfg frontend.Config) *Frontend {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Frontend{cfg: cfg, fecfg: fecfg}
}

// Name identifies the model.
func (f *Frontend) Name() string { return "xbc" }

// runState carries the per-run simulation state.
type runState struct {
	cache *Cache
	xbtb  *XBTB
	xibtb *XiBTB
	nxb   *XiBTB // next-XB predictor (optional; same structure as XiBTB)
	xrsb  *XRSB
	xbp   bpred.DirPredictor
	path  *frontend.ICPath

	// Previous-XB context (the paper's XB_-1 pointer).
	prevEntry    *Entry
	prevClass    isa.Class
	prevIP       isa.Addr
	prevTaken    bool
	prevViolated bool
	prevPromoted bool
	// pendingCall is the call whose Fall pointer should be wired to the
	// XB following the just-executed return.
	pendingCall      isa.Addr
	pendingCallValid bool
	// popped return pointer, consumed when the successor is examined.
	retPtr      Ptr
	retPtrValid bool

	// Delivery fetch-cycle packing state (dual fetch, bank conflicts).
	cycleBanks uint
	cycleXBs   int
	cycleUops  int

	delivery bool

	bankConflicts  uint64
	promViolations uint64
	promRedirects  uint64
	nxbHits        uint64
	nxbMisses      uint64

	// reasons counts why delivery was abandoned, for diagnostics. The
	// hot path records an enum index; the string names the metrics report
	// uses are materialized once, at the end of the run.
	reasons [numAbandonReasons]uint64
	reason  abandonReason
}

// abandonReason enumerates why deliverXB refused to supply a block, one
// index per former "reasons" map key: an XBC data-array miss, an invalid
// pointer after each previous-XB class, or a stale pointer after each
// previous-XB class. Indexing by a small integer keeps the per-abandon
// bookkeeping allocation-free; reasonKey reconstructs the report string.
type abandonReason uint16

const (
	abandonXBCMiss    abandonReason = 0
	abandonPtrInvalid abandonReason = 1                                                 // + previous XB's isa.Class
	abandonPtrStale   abandonReason = abandonPtrInvalid + abandonReason(isa.NumClasses) // + class
	numAbandonReasons               = 1 + 2*isa.NumClasses
)

// reasonKey renders the Metrics.Extra key for one reason index, matching
// the keys the former string-keyed map produced.
func reasonKey(r abandonReason) string {
	switch {
	case r == abandonXBCMiss:
		return "reason_xbc_miss"
	case r < abandonPtrStale:
		return "reason_ptr_invalid_" + isa.Class(r-abandonPtrInvalid).String()
	default:
		return "reason_ptr_stale_" + isa.Class(r-abandonPtrStale).String()
	}
}

// Run replays the stream through the XBC frontend. With Config.Check set
// it panics on the first invariant violation; use RunChecked (or
// frontend.RunSafe) to receive violations as errors instead.
func (f *Frontend) Run(s *trace.Stream) frontend.Metrics {
	m, err := f.run(s)
	if err != nil {
		panic(err)
	}
	return m
}

// RunChecked replays the stream like Run but returns the first invariant
// violation (Config.Check) as an error; the returned metrics cover the run
// up to the violation. It implements frontend.Checked.
func (f *Frontend) RunChecked(s *trace.Stream) (frontend.Metrics, error) {
	return f.run(s)
}

func (f *Frontend) run(s *trace.Stream) (frontend.Metrics, error) {
	ses := f.NewSession().(*session)
	ses.StepTo(s.Records(), len(s.Records()))
	m := ses.Finish()
	return m, ses.err
}

// charge adds a misprediction penalty to the metrics (suppressed in the
// oracle limit study, where prediction is perfect).
func (f *Frontend) charge(st *runState, m *frontend.Metrics, c int) {
	if f.cfg.Oracle {
		return
	}
	m.PenaltyCycles += uint64(c)
	if st.delivery {
		m.DeliveryPenalty += uint64(c)
	}
}

// oracleFollow models the oracle limit where the fetch engine always
// knows the successor's location if the block is resident at all.
func (f *Frontend) oracleFollow(st *runState, cur *dynXB) Ptr {
	return st.cache.LocatePtr(cur.endIP, cur.rseq, cur.uops)
}

// resolvePrev predicts the previous XB's ending transfer, charges
// misprediction penalties, and returns the XBTB pointer along the
// committed path toward cur (invalid = XBTB miss / misfetch).
//
//xbc:hot
func (f *Frontend) resolvePrev(st *runState, cur *dynXB, m *frontend.Metrics) Ptr {
	if st.prevEntry == nil {
		return Ptr{}
	}
	// Next-XB prediction ([Jaco97]-style): a direct hit supplies the
	// successor pointer without spending a per-branch prediction; a miss
	// falls through to the standard XBP/XBTB/XiBTB/XRSB chain with its
	// usual penalties.
	if st.nxb != nil {
		if pred, ok := st.nxb.Predict(st.prevIP); ok && pred.Matches(cur.endIP, cur.uops) {
			st.nxbHits++
			// Keep the direction predictor and statistics warm.
			switch st.prevClass {
			case isa.CondBranch:
				if !st.prevPromoted {
					m.CondExec++
					st.xbp.Update(st.prevIP, st.prevTaken)
				}
			case isa.IndirectJump, isa.IndirectCall:
				m.IndExec++
			case isa.Return:
				m.RetExec++
				// The XRSB was already popped when the return-ending XB
				// committed; just consume the pending pointer.
				st.retPtrValid = false
			default:
				// Call, Jump, Seq: unconditional along the committed path;
				// no predictor to keep warm.
			}
			return pred
		}
		st.nxbMisses++
	}
	var follow Ptr
	switch st.prevClass {
	case isa.CondBranch:
		if st.prevPromoted {
			// Promoted: fetch assumed the promoted direction; no XBP
			// prediction was spent. A violation is a misfetch with a
			// full re-steer penalty.
			if st.prevViolated {
				f.charge(st, m, f.fecfg.MispredictPenalty)
				st.promViolations++
			}
		} else {
			m.CondExec++
			pred := st.xbp.Predict(st.prevIP)
			st.xbp.Update(st.prevIP, st.prevTaken)
			if pred != st.prevTaken {
				m.CondMiss++
				f.charge(st, m, f.fecfg.MispredictPenalty)
			}
		}
		if st.prevTaken {
			follow = st.prevEntry.Taken
		} else {
			follow = st.prevEntry.Fall
		}
	case isa.Call:
		follow = st.prevEntry.Taken
	case isa.IndirectJump, isa.IndirectCall:
		m.IndExec++
		pred, ok := st.xibtb.Predict(st.prevIP)
		if !ok || !pred.Matches(cur.endIP, cur.uops) {
			m.IndMiss++
			f.charge(st, m, f.fecfg.MispredictPenalty)
			if f.cfg.Oracle {
				follow = f.oracleFollow(st, cur)
			} else {
				// The correct successor cannot be located by target
				// address (section 3.5): only a matching XiBTB pointer
				// keeps us in delivery mode.
				follow = Ptr{}
			}
		} else {
			follow = pred
		}
	case isa.Return:
		m.RetExec++
		if !st.retPtrValid || !st.retPtr.Matches(cur.endIP, cur.uops) {
			m.RetMiss++
			f.charge(st, m, f.fecfg.MispredictPenalty)
			if f.cfg.Oracle {
				follow = f.oracleFollow(st, cur)
			} else {
				follow = Ptr{}
			}
		} else {
			follow = st.retPtr
		}
	default: // isa.Seq: quota cut, single successor
		follow = st.prevEntry.Taken
	}
	return follow
}

// deliverXB tries to supply cur from the XBC; returns false on any miss
// (caller switches to build mode).
//xbc:hot
func (f *Frontend) deliverXB(st *runState, cur *dynXB, follow Ptr, m *frontend.Metrics) bool {
	if !follow.Valid {
		st.reason = abandonPtrInvalid + abandonReason(st.prevClass)
		return false
	}
	if !follow.Matches(cur.endIP, cur.uops) {
		// Stale pointer. If it names a block that has since been promoted
		// into a combined XB, its XBTB entry forwards us there with a
		// one-cycle penalty instead of a build switch (section 3.8).
		if e0, ok := st.xbtb.Lookup(follow.EndIP); ok && e0.Promoted && e0.PromotedTo.Valid &&
			e0.PromotedTo.EndIP == cur.endIP && int(follow.Offset)+int(e0.PromotedTo.Offset) == cur.uops {
			res := st.cache.FetchPtr(e0.PromotedTo, cur.uops, cur.rseq)
			if res.OK {
				m.PenaltyCycles++
				m.DeliveryPenalty++
				f.packFetch(st, cur, e0.PromotedTo, res.Banks, m)
				m.Insts += uint64(cur.end - cur.start)
				m.Uops += uint64(cur.uops)
				m.DeliveredUops += uint64(cur.uops)
				st.promRedirects++
				return true
			}
		}
		st.reason = abandonPtrStale + abandonReason(st.prevClass)
		return false
	}
	res := st.cache.FetchPtr(follow, cur.uops, cur.rseq)
	if !res.OK {
		st.reason = abandonXBCMiss
		return false
	}
	if res.Searched {
		// Set search costs a cycle but avoids the build switch (3.9).
		m.PenaltyCycles++
		m.DeliveryPenalty++
	}
	f.packFetch(st, cur, follow, res.Banks, m)
	m.Insts += uint64(cur.end - cur.start)
	m.Uops += uint64(cur.uops)
	m.DeliveredUops += uint64(cur.uops)
	return true
}

// packFetch performs the fetch-cycle accounting: up to two XBs per cycle
// (the XBTB supplies two pointers), subject to bank conflicts and the
// 16-uop fetch width. Conflicting blocks are deferred to the next cycle
// and feed the dynamic-placement counters (section 3.10).
//xbc:hot
func (f *Frontend) packFetch(st *runState, cur *dynXB, p Ptr, banks uint, m *frontend.Metrics) {
	fetchWidth := f.cfg.Banks * f.cfg.BankUops
	if f.cfg.XBsPerCycle <= 1 {
		m.DeliveryFetches++
		return
	}
	conflict := st.cycleBanks&banks != 0
	if st.cycleXBs >= 1 && !conflict && st.cycleXBs < f.cfg.XBsPerCycle && st.cycleUops+cur.uops <= fetchWidth {
		// Packs into the current cycle alongside the previous XB(s).
		st.cycleBanks |= banks
		st.cycleXBs++
		st.cycleUops += cur.uops
		if st.cycleXBs == f.cfg.XBsPerCycle {
			st.cycleXBs, st.cycleBanks, st.cycleUops = 0, 0, 0
		}
		return
	}
	if st.cycleXBs >= 1 && conflict {
		st.bankConflicts++
		st.cache.NoteConflictPtr(p, cur.uops, st.cycleBanks&banks)
	}
	// Start a new fetch cycle with cur.
	m.DeliveryFetches++
	st.cycleBanks = banks
	st.cycleXBs = 1
	st.cycleUops = cur.uops
}

// buildXB supplies cur through the IC path while the XFU assembles and
// stores it, then wires the mode-switch condition.
func (f *Frontend) buildXB(st *runState, recs []trace.Rec, cur *dynXB, m *frontend.Metrics) {
	// Decode groups cover exactly this XB's records.
	for j := cur.start; j < cur.end; {
		g := st.path.FetchGroup(recs[:cur.end], j)
		if g.N == 0 {
			g.N = 1
			g.Uops = int(recs[j].NumUops)
		}
		m.BuildCycles += uint64(1 + g.Stall)
		j += g.N
	}
	m.Insts += uint64(cur.end - cur.start)
	m.Uops += uint64(cur.uops)
	m.BuildUops += uint64(cur.uops)

	avoid := st.cycleBanks // smart placement dodges the in-flight banks
	_, _, resident := st.cache.Insert(cur.endIP, cur.rseq, avoid)
	if resident {
		// The XB was already in the XBC: XBC hit + XBTB hit switches
		// back to delivery (section 3.5).
		if !st.delivery {
			st.delivery = true
			m.ModeSwitches++
		}
	}
}

// commit wires XBTB state after cur has been supplied: allocates/refreshes
// cur's entry, updates the previous XB's pointer along the committed path,
// trains promotion counters, and maintains the XRSB and its learning
// shadow stack.
//xbc:hot
func (f *Frontend) commit(st *runState, cur *dynXB, m *frontend.Metrics) {
	e := st.xbtb.Ensure(cur.endIP, cur.class)
	curPtr := st.cache.LocatePtr(cur.endIP, cur.rseq, cur.uops)

	if st.nxb != nil && st.prevEntry != nil && curPtr.Valid {
		st.nxb.Update(st.prevIP, curPtr)
	}

	// Wire the previous XB's successor pointer along the committed path.
	if st.prevEntry != nil && curPtr.Valid {
		switch st.prevClass {
		case isa.CondBranch:
			if st.prevTaken {
				st.prevEntry.Taken = curPtr
			} else {
				st.prevEntry.Fall = curPtr
			}
		case isa.Call:
			st.prevEntry.Taken = curPtr
		case isa.IndirectJump, isa.IndirectCall:
			st.xibtb.Update(st.prevIP, curPtr)
		case isa.Return:
			if st.pendingCallValid {
				ce := st.xbtb.Ensure(st.pendingCall, isa.Call)
				ce.Fall = curPtr
			}
		default: // quota cut
			st.prevEntry.Taken = curPtr
		}
	}
	st.pendingCallValid = false
	st.retPtrValid = false

	// Promotion counter training: the ending branch (when it is a live,
	// non-promoted conditional) and every promoted branch traversed
	// inside the block (the counter keeps gathering statistics, 3.8).
	if cur.class == isa.CondBranch && !cur.endPromoted {
		st.xbtb.Train(e, cur.taken, f.cfg)
	}
	if cur.violated {
		st.xbtb.Train(e, cur.taken, f.cfg)
	}
	for _, obs := range cur.inner {
		pe := st.xbtb.Ensure(obs.ip, isa.CondBranch)
		st.xbtb.Train(pe, obs.taken, f.cfg)
		if pe.Promoted && curPtr.Valid {
			// Record where the combined block lives and the tail length
			// past this branch, so stale pointers to the old block can
			// redirect regardless of their entry point (section 3.8).
			pe.PromotedTo = Ptr{EndIP: curPtr.EndIP, Variant: curPtr.Variant, Offset: int32(cur.uops - obs.cum), Valid: true, vref: curPtr.vref}
		}
	}

	// Return-stack maintenance: push the call entry reference; at the
	// return, read the after-return pointer out of that entry (it may
	// have been learned since the push) and remember the call for the
	// XB_ret pointer update.
	switch cur.class {
	case isa.Call, isa.IndirectCall:
		st.xrsb.Push(cur.endIP)
	case isa.Return:
		callIP, ok := st.xrsb.Pop()
		st.retPtrValid = false
		if ok {
			if ce, found := st.xbtb.Lookup(callIP); found {
				st.retPtr, st.retPtrValid = ce.Fall, ce.Fall.Valid
			}
			st.pendingCall = callIP
			st.pendingCallValid = true
		}
	default:
		// CondBranch, IndirectJump, Jump, Seq: no return-stack activity.
	}

	st.prevEntry = e
	st.prevClass = cur.class
	st.prevIP = cur.endIP
	st.prevTaken = cur.taken
	st.prevViolated = cur.violated
	st.prevPromoted = cur.endPromoted
}

var (
	_ frontend.Frontend = (*Frontend)(nil)
	_ frontend.Checked  = (*Frontend)(nil)
)
