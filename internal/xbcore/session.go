package xbcore

import (
	"fmt"

	"xbc/internal/bpred"
	"xbc/internal/frontend"
	"xbc/internal/isa"
	"xbc/internal/snapshot"
	"xbc/internal/trace"
)

// session is one incremental run of the XBC frontend: the Run loop with
// its state (cache, XBTB complex, XBP, fetch path, previous-XB context,
// counters, position) lifted into a struct so it can pause at a
// committed-block boundary.
type session struct {
	f  *Frontend
	m  frontend.Metrics
	st *runState
	// chk is the cycle-level invariant checker (Config.Check only). A
	// checked session is never snapshotted — jobspec excludes Check runs
	// from both snapshots and sampling — so SaveState/LoadState ignore it.
	chk *checker
	// err is the first invariant violation; once set, StepTo stops.
	err error
	// cur is the per-run cut scratch, reused across iterations so the
	// committed-block loop does not allocate (see Run).
	cur      dynXB
	promoted promQuery
	pos      int
}

// NewSession returns a cold-state incremental run.
func (f *Frontend) NewSession() frontend.Session {
	cache, err := NewCache(f.cfg)
	if err != nil {
		panic(err) // geometry was validated at construction
	}
	st := &runState{
		cache: cache,
		xbtb:  NewXBTB(f.cfg),
		xibtb: NewXiBTB(10, 8),
		xrsb:  NewXRSB(f.cfg.XRSBDepth),
		xbp:   f.cfg.newXBP(),
		path:  frontend.NewICPath(f.fecfg, frontend.DefaultICConfig()),
	}
	if f.cfg.NextXB {
		st.nxb = NewXiBTB(12, 10)
	}
	s := &session{
		f:  f,
		st: st,
		cur: dynXB{
			rseq:  make([]isa.UopID, 0, f.cfg.Quota),
			inner: make([]promObs, 0, f.cfg.Quota),
		},
	}
	if f.cfg.Check {
		s.chk = newChecker(f.cfg, cache, st.xbtb)
	}
	s.promoted = func(ip isa.Addr) (bool, bool) {
		if !f.cfg.Promotion {
			return false, false
		}
		return st.xbtb.PromotedDir(ip)
	}
	return s
}

// Pos returns the current record position.
func (s *session) Pos() int { return s.pos }

// Seek repositions without touching state.
func (s *session) Seek(target int) { s.pos = target }

// StepTo simulates committed XBs until the position reaches target,
// stopping only at block boundaries.
func (s *session) StepTo(recs []trace.Rec, target int) int {
	f, st, m := s.f, s.st, &s.m
	i := s.pos
	//xbc:hot
	for i < target && i < len(recs) && s.err == nil {
		cutXBInto(&s.cur, recs, i, f.cfg.Quota, s.promoted)
		cur := &s.cur
		if cur.end == cur.start {
			break // defensive: no progress possible
		}

		// Resolve how fetch reached cur: predict the previous XB's ending
		// branch and obtain the pointer along the committed path.
		follow := f.resolvePrev(st, cur, m)

		if st.delivery {
			if !f.deliverXB(st, cur, follow, m) {
				st.delivery = false
				m.ModeSwitches++
				m.StructMisses++
				st.reasons[st.reason]++
				// Falling out of delivery redirects fetch into the IC
				// path (section 3.5's switch to build mode).
				m.PenaltyCycles += uint64(f.fecfg.BuildEntryPenalty)
				f.buildXB(st, recs, cur, m)
			}
		} else {
			f.buildXB(st, recs, cur, m)
		}

		// Wire pointers from the previous XB to cur and roll the context.
		f.commit(st, cur, m)
		if s.chk != nil {
			if err := s.chk.afterCommit(cur, st.prevEntry); err != nil {
				s.err = err
				i = cur.end
				break
			}
		}
		i = cur.end
	}
	s.pos = i
	return i
}

// Warm functionally warms the IC path and the XBP direction predictor
// over [pos, target). The XB-granularity structures (XBTB, XiBTB, XRSB,
// the cache itself) key on dynamic block identities that only detailed
// simulation produces, so they stay as-is — stale, not cold.
func (s *session) Warm(recs []trace.Rec, target int) {
	frontend.WarmIC(s.st.path, recs, s.pos, target)
	xbp := s.st.xbp
	for i := s.pos; i < target && i < len(recs); i++ {
		if r := recs[i]; r.Class == isa.CondBranch {
			xbp.Update(r.IP, r.Taken)
		}
	}
	s.pos = target
}

// Metrics returns the raw counters accumulated so far.
func (s *session) Metrics() frontend.Metrics { return s.m }

// Finish runs the end-of-stream checker sweep, attaches the extras, and
// finalizes. After a checker violation the extras are skipped, matching
// the early return of the non-session run path.
func (s *session) Finish() frontend.Metrics {
	f, st, m := s.f, s.st, &s.m
	if s.chk != nil && s.err == nil {
		s.err = s.chk.sweep()
	}
	if s.err != nil {
		m.Finalize(f.fecfg)
		return s.m
	}
	m.AddExtra("redundancy", st.cache.Redundancy())
	m.AddExtra("fragmentation", st.cache.Fragmentation())
	m.AddExtra("ic_miss_rate", st.path.MissRate())
	m.AddExtra("set_searches", float64(st.cache.SetSearches))
	m.AddExtra("bank_conflicts", float64(st.bankConflicts))
	m.AddExtra("promotions", float64(st.xbtb.Promotions))
	m.AddExtra("depromotions", float64(st.xbtb.Depromotions))
	m.AddExtra("prom_violations", float64(st.promViolations))
	m.AddExtra("prom_redirects", float64(st.promRedirects))
	if st.nxb != nil {
		m.AddExtra("nxb_hits", float64(st.nxbHits))
		m.AddExtra("nxb_misses", float64(st.nxbMisses))
	}
	m.AddExtra("complex_xbs", float64(st.cache.ComplexXBs))
	m.AddExtra("extensions", float64(st.cache.Extensions))
	m.AddExtra("replacements", float64(st.cache.Replacements))
	for r, v := range st.reasons {
		if v > 0 {
			m.AddExtra(reasonKey(abandonReason(r)), float64(v))
		}
	}
	m.Finalize(f.fecfg)
	return s.m
}

// SaveState serializes the complete session state.
func (s *session) SaveState(w *snapshot.Writer) {
	st := s.st
	w.Int(s.pos)
	s.m.SaveState(w)
	st.path.SaveState(w)
	st.cache.SaveState(w)
	st.xbtb.SaveState(w)
	st.xibtb.SaveState(w)
	w.Bool(st.nxb != nil)
	if st.nxb != nil {
		st.nxb.SaveState(w)
	}
	st.xrsb.SaveState(w)
	bpred.SaveDir(w, st.xbp)

	w.Int(st.xbtb.entryIndex(st.prevEntry))
	w.U8(uint8(st.prevClass))
	w.U64(uint64(st.prevIP))
	w.Bool(st.prevTaken)
	w.Bool(st.prevViolated)
	w.Bool(st.prevPromoted)
	w.U64(uint64(st.pendingCall))
	w.Bool(st.pendingCallValid)
	savePtr(w, st.retPtr)
	w.Bool(st.retPtrValid)
	w.U64(uint64(st.cycleBanks))
	w.Int(st.cycleXBs)
	w.Int(st.cycleUops)
	w.Bool(st.delivery)
	w.U64(st.bankConflicts)
	w.U64(st.promViolations)
	w.U64(st.promRedirects)
	w.U64(st.nxbHits)
	w.U64(st.nxbMisses)
	for _, v := range st.reasons {
		w.U64(v)
	}
}

// LoadState restores state saved by SaveState.
func (s *session) LoadState(r *snapshot.Reader) error {
	st := s.st
	s.pos = r.Int()
	if r.Err() == nil && s.pos < 0 {
		return fmt.Errorf("xbcore: negative position %d", s.pos)
	}
	if err := s.m.LoadState(r); err != nil {
		return err
	}
	if err := st.path.LoadState(r); err != nil {
		return err
	}
	if err := st.cache.LoadState(r); err != nil {
		return err
	}
	if err := st.xbtb.LoadState(r); err != nil {
		return err
	}
	if err := st.xibtb.LoadState(r); err != nil {
		return err
	}
	hasNXB := r.Bool()
	if r.Err() == nil && hasNXB != (st.nxb != nil) {
		return fmt.Errorf("xbcore: snapshot next-XB predictor mismatch")
	}
	if st.nxb != nil {
		if err := st.nxb.LoadState(r); err != nil {
			return err
		}
	}
	if err := st.xrsb.LoadState(r); err != nil {
		return err
	}
	if err := bpred.LoadDir(r, st.xbp); err != nil {
		return err
	}

	prevIdx := r.Int()
	if r.Err() == nil {
		e, err := st.xbtb.entryAt(prevIdx)
		if err != nil {
			return err
		}
		st.prevEntry = e
	}
	st.prevClass = isa.Class(r.U8())
	st.prevIP = isa.Addr(r.U64())
	st.prevTaken = r.Bool()
	st.prevViolated = r.Bool()
	st.prevPromoted = r.Bool()
	st.pendingCall = isa.Addr(r.U64())
	st.pendingCallValid = r.Bool()
	st.retPtr = loadPtr(r)
	st.retPtrValid = r.Bool()
	st.cycleBanks = uint(r.U64())
	st.cycleXBs = r.Int()
	st.cycleUops = r.Int()
	st.delivery = r.Bool()
	st.bankConflicts = r.U64()
	st.promViolations = r.U64()
	st.promRedirects = r.U64()
	st.nxbHits = r.U64()
	st.nxbMisses = r.U64()
	for k := range st.reasons {
		st.reasons[k] = r.U64()
	}
	return r.Err()
}

var _ frontend.SessionFrontend = (*Frontend)(nil)
