package xbcore

import (
	"testing"

	"xbc/internal/frontend"
	"xbc/internal/program"
	"xbc/internal/trace"
)

func xbcTestStream(t *testing.T, seed int64, uops uint64) *trace.Stream {
	t.Helper()
	spec := program.DefaultSpec("xbc-fe-test", seed)
	spec.Functions = 60
	s, err := trace.Generate(spec, uops)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFrontendConservation(t *testing.T) {
	// Every dynamic uop is supplied exactly once, either from the XBC or
	// from the IC path.
	s := xbcTestStream(t, 3, 150_000)
	fe := New(DefaultConfig(16*1024), frontend.DefaultConfig())
	m := fe.Run(s)
	if m.Uops != s.Uops() {
		t.Fatalf("uops consumed %d != stream uops %d", m.Uops, s.Uops())
	}
	if m.DeliveredUops+m.BuildUops != m.Uops {
		t.Fatalf("delivered %d + build %d != total %d", m.DeliveredUops, m.BuildUops, m.Uops)
	}
	if m.Insts != uint64(s.Len()) {
		t.Fatalf("insts %d != stream records %d", m.Insts, s.Len())
	}
}

func TestFrontendDeterministic(t *testing.T) {
	s := xbcTestStream(t, 4, 100_000)
	fe := New(DefaultConfig(16*1024), frontend.DefaultConfig())
	s.Reset()
	a := fe.Run(s)
	fe2 := New(DefaultConfig(16*1024), frontend.DefaultConfig())
	s.Reset()
	b := fe2.Run(s)
	if a.DeliveredUops != b.DeliveredUops || a.BuildUops != b.BuildUops ||
		a.CondMiss != b.CondMiss || a.ModeSwitches != b.ModeSwitches ||
		a.PenaltyCycles != b.PenaltyCycles {
		t.Fatalf("non-deterministic run:\n%+v\n%+v", a, b)
	}
}

func TestFrontendReachesDelivery(t *testing.T) {
	// On a warm cache covering the working set, the vast majority of uops
	// must come from the XBC.
	s := xbcTestStream(t, 5, 200_000)
	fe := New(DefaultConfig(64*1024), frontend.DefaultConfig())
	m := fe.Run(s)
	if m.UopMissRate() > 40 {
		t.Fatalf("miss rate %.1f%% absurdly high for a covered working set", m.UopMissRate())
	}
	if m.DeliveryFetches == 0 || m.ModeSwitches == 0 {
		t.Fatal("never entered delivery mode")
	}
	if m.Bandwidth() <= 1 {
		t.Fatalf("delivery bandwidth %.2f suspiciously low", m.Bandwidth())
	}
	if m.Bandwidth() > float64(frontend.DefaultConfig().RenamerWidth) {
		t.Fatalf("bandwidth %.2f exceeds the renamer width", m.Bandwidth())
	}
}

func TestFrontendRedundancyLow(t *testing.T) {
	// The XBC's defining property: (near) redundancy freedom. The TC on
	// the same streams measures well above 1.5.
	s := xbcTestStream(t, 6, 150_000)
	fe := New(DefaultConfig(16*1024), frontend.DefaultConfig())
	m := fe.Run(s)
	red := m.Extra["redundancy"]
	if red == 0 {
		t.Fatal("redundancy not measured")
	}
	if red > 1.3 {
		t.Fatalf("XBC redundancy %.3f too high", red)
	}
}

func TestFrontendSmallerCacheMissesMore(t *testing.T) {
	s := xbcTestStream(t, 7, 200_000)
	small := New(DefaultConfig(2*1024), frontend.DefaultConfig())
	s.Reset()
	ms := small.Run(s)
	big := New(DefaultConfig(64*1024), frontend.DefaultConfig())
	s.Reset()
	mb := big.Run(s)
	if ms.UopMissRate() <= mb.UopMissRate() {
		t.Fatalf("2K cache (%.2f%%) should miss more than 64K (%.2f%%)",
			ms.UopMissRate(), mb.UopMissRate())
	}
}

func TestFrontendAblationsRun(t *testing.T) {
	// Every feature flag combination must run to completion and conserve
	// uops.
	s := xbcTestStream(t, 8, 60_000)
	mutations := []func(*Config){
		func(c *Config) { c.Promotion = false },
		func(c *Config) { c.ComplexXB = false },
		func(c *Config) { c.SetSearch = false },
		func(c *Config) { c.SmartPlacement = false },
		func(c *Config) { c.DynamicPlacement = false },
		func(c *Config) { c.XBsPerCycle = 1 },
		func(c *Config) { c.Banks, c.BankUops = 2, 8 },
		func(c *Config) { c.Banks, c.BankUops = 8, 2 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig(8 * 1024)
		mut(&cfg)
		fe := New(cfg, frontend.DefaultConfig())
		s.Reset()
		m := fe.Run(s)
		if m.DeliveredUops+m.BuildUops != m.Uops || m.Uops != s.Uops() {
			t.Fatalf("ablation %d does not conserve uops", i)
		}
	}
}

func TestPromotionImprovesBandwidthOrNeutral(t *testing.T) {
	// Promotion merges blocks, lengthening fetch units; bandwidth should
	// not collapse when it is enabled.
	s := xbcTestStream(t, 9, 150_000)
	on := DefaultConfig(32 * 1024)
	off := on
	off.Promotion = false
	s.Reset()
	mOn := New(on, frontend.DefaultConfig()).Run(s)
	s.Reset()
	mOff := New(off, frontend.DefaultConfig()).Run(s)
	if mOn.Bandwidth() < 0.8*mOff.Bandwidth() {
		t.Fatalf("promotion collapsed bandwidth: %.2f vs %.2f", mOn.Bandwidth(), mOff.Bandwidth())
	}
}

func TestDualFetchImprovesBandwidth(t *testing.T) {
	s := xbcTestStream(t, 10, 150_000)
	dual := DefaultConfig(32 * 1024)
	single := dual
	single.XBsPerCycle = 1
	s.Reset()
	mDual := New(dual, frontend.DefaultConfig()).Run(s)
	s.Reset()
	mSingle := New(single, frontend.DefaultConfig()).Run(s)
	// With an 8-wide renamer the ceiling often binds both configurations;
	// dual fetch must never be materially slower, and its fetch-cycle
	// count must be lower.
	if mDual.Bandwidth() < 0.95*mSingle.Bandwidth() {
		t.Fatalf("dual fetch materially slower than single: %.2f vs %.2f",
			mDual.Bandwidth(), mSingle.Bandwidth())
	}
	if mDual.DeliveryFetches >= mSingle.DeliveryFetches {
		t.Fatalf("dual fetch did not reduce fetch cycles: %d vs %d",
			mDual.DeliveryFetches, mSingle.DeliveryFetches)
	}
}

func TestFrontendName(t *testing.T) {
	fe := New(DefaultConfig(8*1024), frontend.DefaultConfig())
	if fe.Name() != "xbc" {
		t.Fatalf("name = %q", fe.Name())
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad := DefaultConfig(8 * 1024)
	bad.Quota = 5
	New(bad, frontend.DefaultConfig())
}

func TestOracleMode(t *testing.T) {
	// Oracle prediction: no misprediction penalties, bandwidth at (or
	// near) the renamer limit, and uops still conserved.
	s := xbcTestStream(t, 11, 150_000)
	cfg := DefaultConfig(32 * 1024)
	cfg.Oracle = true
	s.Reset()
	m := New(cfg, frontend.DefaultConfig()).Run(s)
	if m.Uops != s.Uops() || m.DeliveredUops+m.BuildUops != m.Uops {
		t.Fatal("oracle mode does not conserve uops")
	}
	base := DefaultConfig(32 * 1024)
	s.Reset()
	mb := New(base, frontend.DefaultConfig()).Run(s)
	if m.UopMissRate() > mb.UopMissRate() {
		t.Fatalf("oracle misses more than baseline: %.2f vs %.2f",
			m.UopMissRate(), mb.UopMissRate())
	}
	if m.Bandwidth() < mb.Bandwidth() {
		t.Fatalf("oracle bandwidth %.2f below baseline %.2f", m.Bandwidth(), mb.Bandwidth())
	}
	if m.Bandwidth() < 7 {
		t.Fatalf("oracle bandwidth %.2f should approach the renamer limit", m.Bandwidth())
	}
}

func TestXBsPerCycleFour(t *testing.T) {
	s := xbcTestStream(t, 12, 100_000)
	cfg := DefaultConfig(32 * 1024)
	cfg.XBsPerCycle = 4
	s.Reset()
	m4 := New(cfg, frontend.DefaultConfig()).Run(s)
	if m4.Uops != s.Uops() {
		t.Fatal("4-wide fetch does not conserve uops")
	}
	cfg1 := DefaultConfig(32 * 1024)
	cfg1.XBsPerCycle = 1
	s.Reset()
	m1 := New(cfg1, frontend.DefaultConfig()).Run(s)
	if m4.DeliveryFetches >= m1.DeliveryFetches {
		t.Fatalf("wider fetch did not reduce fetch cycles: %d vs %d",
			m4.DeliveryFetches, m1.DeliveryFetches)
	}
}
