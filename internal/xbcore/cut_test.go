package xbcore

import (
	"testing"

	"xbc/internal/isa"
	"xbc/internal/trace"
)

func mkRec(ip isa.Addr, class isa.Class, uops int, taken bool, next isa.Addr) trace.Rec {
	r := trace.Rec{IP: ip, Class: class, NumUops: uint8(uops), Size: 4, Taken: taken}
	if next == 0 {
		r.Next = r.FallThrough()
	} else {
		r.Next = next
	}
	return r
}

func noProm(isa.Addr) (bool, bool) { return false, false }

func TestCutXBEndsOnCondBranch(t *testing.T) {
	recs := []trace.Rec{
		mkRec(0x100, isa.Seq, 2, false, 0),
		mkRec(0x104, isa.CondBranch, 1, true, 0x200),
		mkRec(0x200, isa.Seq, 1, false, 0),
	}
	xb := cutXB(recs, 0, 16, noProm)
	if xb.start != 0 || xb.end != 2 {
		t.Fatalf("range [%d,%d), want [0,2)", xb.start, xb.end)
	}
	if xb.endIP != 0x104 || xb.class != isa.CondBranch || !xb.taken {
		t.Fatalf("identity wrong: %+v", xb)
	}
	if xb.uops != 3 {
		t.Fatalf("uops = %d", xb.uops)
	}
}

func TestCutXBJumpDoesNotCut(t *testing.T) {
	recs := []trace.Rec{
		mkRec(0x100, isa.Seq, 2, false, 0),
		mkRec(0x104, isa.Jump, 1, true, 0x200),
		mkRec(0x200, isa.Seq, 2, false, 0),
		mkRec(0x204, isa.Return, 1, true, 0x300),
	}
	xb := cutXB(recs, 0, 16, noProm)
	if xb.end != 4 || xb.endIP != 0x204 || xb.class != isa.Return {
		t.Fatalf("jump cut the XB: %+v", xb)
	}
	if xb.uops != 6 {
		t.Fatalf("uops = %d", xb.uops)
	}
}

func TestCutXBQuota(t *testing.T) {
	var recs []trace.Rec
	ip := isa.Addr(0x100)
	for i := 0; i < 6; i++ {
		r := mkRec(ip, isa.Seq, 4, false, 0)
		recs = append(recs, r)
		ip = r.FallThrough()
	}
	xb := cutXB(recs, 0, 16, noProm)
	if xb.uops != 16 || xb.end != 4 {
		t.Fatalf("quota cut wrong: uops=%d end=%d", xb.uops, xb.end)
	}
	if xb.class != isa.Seq {
		t.Fatalf("quota-cut class = %v, want Seq", xb.class)
	}
	if xb.endIP != recs[3].IP {
		t.Fatalf("quota-cut identity = %#x, want %#x", xb.endIP, recs[3].IP)
	}
}

func TestCutXBReverseOrder(t *testing.T) {
	recs := []trace.Rec{
		mkRec(0x100, isa.Seq, 2, false, 0),       // uops (0x100,0) (0x100,1)
		mkRec(0x104, isa.CondBranch, 1, true, 0), // uop (0x104,0)
	}
	xb := cutXB(recs, 0, 16, noProm)
	want := []isa.UopID{isa.Uop(0x104, 0), isa.Uop(0x100, 1), isa.Uop(0x100, 0)}
	if len(xb.rseq) != len(want) {
		t.Fatalf("rseq len = %d", len(xb.rseq))
	}
	for i := range want {
		if xb.rseq[i] != want[i] {
			t.Fatalf("rseq[%d] = %v, want %v", i, xb.rseq[i], want[i])
		}
	}
}

func TestCutXBPromotedJoins(t *testing.T) {
	recs := []trace.Rec{
		mkRec(0x100, isa.Seq, 2, false, 0),
		mkRec(0x104, isa.CondBranch, 1, false, 0), // promoted NT
		mkRec(0x108, isa.Seq, 2, false, 0),
		mkRec(0x10c, isa.CondBranch, 1, true, 0x100),
	}
	prom := func(ip isa.Addr) (bool, bool) {
		if ip == 0x104 {
			return false, true // promoted not-taken
		}
		return false, false
	}
	xb := cutXB(recs, 0, 16, prom)
	if xb.end != 4 || xb.endIP != 0x10c {
		t.Fatalf("promoted branch cut the block: %+v", xb)
	}
	if len(xb.inner) != 1 || xb.inner[0].ip != 0x104 || xb.inner[0].taken {
		t.Fatalf("inner promotion obs wrong: %+v", xb.inner)
	}
	if xb.inner[0].cum != 3 {
		t.Fatalf("inner cum = %d, want 3", xb.inner[0].cum)
	}
}

func TestCutXBPromotionViolation(t *testing.T) {
	recs := []trace.Rec{
		mkRec(0x100, isa.Seq, 2, false, 0),
		mkRec(0x104, isa.CondBranch, 1, true, 0x300), // promoted NT but goes taken
		mkRec(0x300, isa.Seq, 2, false, 0),
	}
	prom := func(ip isa.Addr) (bool, bool) {
		return false, ip == 0x104 // promoted not-taken
	}
	xb := cutXB(recs, 0, 16, prom)
	if xb.end != 2 || !xb.violated || !xb.endPromoted {
		t.Fatalf("violation not detected: %+v", xb)
	}
	if len(xb.inner) != 0 {
		t.Fatal("violated ending must not be recorded as inner")
	}
	if xb.class != isa.CondBranch || !xb.taken {
		t.Fatalf("ending identity wrong: %+v", xb)
	}
}

func TestCutXBQuotaOnPromotedBranch(t *testing.T) {
	// A promoted on-path branch right at the quota boundary: the block
	// ends there with class CondBranch and endPromoted set.
	recs := []trace.Rec{
		mkRec(0x100, isa.Seq, 4, false, 0),
		mkRec(0x104, isa.Seq, 4, false, 0),
		mkRec(0x108, isa.Seq, 4, false, 0),
		mkRec(0x10c, isa.CondBranch, 4, false, 0), // 16 uops total, promoted NT
		mkRec(0x110, isa.Seq, 4, false, 0),
	}
	prom := func(ip isa.Addr) (bool, bool) {
		return false, ip == 0x10c
	}
	xb := cutXB(recs, 0, 16, prom)
	if xb.end != 4 || xb.uops != 16 {
		t.Fatalf("quota cut wrong: %+v", xb)
	}
	if xb.class != isa.CondBranch || !xb.endPromoted || xb.violated {
		t.Fatalf("promoted-at-quota identity wrong: %+v", xb)
	}
}

func TestCutXBStreamEnd(t *testing.T) {
	recs := []trace.Rec{
		mkRec(0x100, isa.Seq, 2, false, 0),
		mkRec(0x104, isa.Seq, 1, false, 0),
	}
	xb := cutXB(recs, 0, 16, noProm)
	if xb.end != 2 || xb.uops != 3 || xb.class != isa.Seq {
		t.Fatalf("stream-end cut wrong: %+v", xb)
	}
}

func TestCutXBCoversStreamExactly(t *testing.T) {
	// Repeated cutting must partition the stream: no gaps, no overlaps,
	// uop counts conserved.
	recs := []trace.Rec{}
	ip := isa.Addr(0x100)
	classes := []isa.Class{isa.Seq, isa.Seq, isa.CondBranch, isa.Seq, isa.Jump, isa.Seq, isa.Call, isa.Seq, isa.Return}
	for rep := 0; rep < 50; rep++ {
		for _, c := range classes {
			r := mkRec(ip, c, 1+rep%3, c != isa.Seq, 0)
			if c == isa.Seq {
				r.Taken = false
			}
			recs = append(recs, r)
			ip = r.FallThrough()
		}
	}
	var total uint64
	for _, r := range recs {
		total += uint64(r.NumUops)
	}
	i := 0
	var covered uint64
	for i < len(recs) {
		xb := cutXB(recs, i, 16, noProm)
		if xb.start != i || xb.end <= i {
			t.Fatalf("bad cut range [%d,%d) at %d", xb.start, xb.end, i)
		}
		if xb.uops > 16 {
			t.Fatalf("over-quota block: %d", xb.uops)
		}
		if len(xb.rseq) != xb.uops {
			t.Fatalf("rseq length %d != uops %d", len(xb.rseq), xb.uops)
		}
		covered += uint64(xb.uops)
		i = xb.end
	}
	if covered != total {
		t.Fatalf("uops not conserved: %d vs %d", covered, total)
	}
}
