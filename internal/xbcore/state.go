package xbcore

import (
	"fmt"

	"xbc/internal/isa"
	"xbc/internal/snapshot"
)

// This file serializes the XBC storage and XBTB complex for warm-state
// snapshots. Geometry-fixed structures (the data array, the XBTB entry
// table, the XiBTB levels, the XRSB) encode in place; the append-only
// logical pools (entries, variants, arenas) encode with their lengths and
// are revalidated on load, since pool indices cross-reference each other
// and a corrupt blob must fail cleanly instead of panicking later. The
// open-addressed index is NOT stored: it is derived state, rebuilt from
// the entry pool at load time (only its size is recorded, so the growth
// schedule — and with it every future allocation — matches the
// uninterrupted run exactly).

// savePtr appends an XBTB pointer. The direct variant reference (vref) is
// included: variant pool indices survive serialization unchanged, and a
// stale or hostile value is safe by construction (resolveRef validates it
// against the pool before use).
func savePtr(w *snapshot.Writer, p Ptr) {
	w.U64(uint64(p.EndIP))
	w.U32(p.Variant)
	w.U32(uint32(p.vref))
	w.U32(uint32(p.Offset))
	w.Bool(p.Valid)
}

// loadPtr reads a pointer written by savePtr.
func loadPtr(r *snapshot.Reader) Ptr {
	return Ptr{
		EndIP:   isa.Addr(r.U64()),
		Variant: r.U32(),
		vref:    int32(r.U32()),
		Offset:  int32(r.U32()),
		Valid:   r.Bool(),
	}
}

// SaveState appends the cache's dynamic state: data array, logical pools,
// occupancy, and statistics.
func (c *Cache) SaveState(w *snapshot.Writer) {
	w.U64(c.tick)
	w.Len(len(c.lineHdrs))
	for i := range c.lineHdrs {
		h := &c.lineHdrs[i]
		w.U64(uint64(h.tag))
		w.U64(h.stamp)
		w.U32(h.meta)
	}
	for _, u := range c.lineUops {
		w.U64(uint64(u))
	}
	w.Len(len(c.entries))
	for i := range c.entries {
		e := &c.entries[i]
		w.U64(uint64(e.endIP))
		w.Int(int(e.head))
		w.Int(int(e.tail))
		w.U32(e.nextID)
	}
	w.Len(len(c.variants))
	for i := range c.variants {
		v := &c.variants[i]
		w.Int(int(v.next))
		w.Int(int(v.entry))
		w.U32(v.id)
		w.U32(uint32(v.rlen))
		w.U32(uint32(v.nrefs))
		w.U32(uint32(v.conflicts))
	}
	// Arenas: lengths are derived (variants x quota / maxOrders slabs).
	for _, u := range c.rseqArena {
		w.U64(uint64(u))
	}
	for _, ref := range c.refsArena {
		w.U8(uint8(ref.bank))
		w.U8(uint8(ref.way))
	}
	w.Int(len(c.idxVals))
	w.Int(c.validLines)
	w.Int(c.usedSlots)
	w.U64(c.Allocs)
	w.U64(c.Evictions)
	w.U64(c.Shares)
	w.U64(c.SetSearches)
	w.U64(c.ComplexXBs)
	w.U64(c.Extensions)
	w.U64(c.Containments)
	w.U64(c.Replacements)
}

// LoadState restores state saved by SaveState into a same-geometry cache,
// rebuilding the address index and validating every pool cross-reference.
func (c *Cache) LoadState(r *snapshot.Reader) error {
	c.tick = r.U64()
	r.LenExact(len(c.lineHdrs))
	for i := range c.lineHdrs {
		h := &c.lineHdrs[i]
		h.tag = isa.Addr(r.U64())
		h.stamp = r.U64()
		h.meta = r.U32()
	}
	for i := range c.lineUops {
		c.lineUops[i] = isa.UopID(r.U64())
	}
	ne := r.Len(20)
	if err := r.Err(); err != nil {
		return err
	}
	c.entries = c.entries[:0]
	for i := 0; i < ne; i++ {
		c.entries = append(c.entries, entryRec{
			endIP:  isa.Addr(r.U64()),
			head:   int32(r.Int()),
			tail:   int32(r.Int()),
			nextID: r.U32(),
		})
	}
	nv := r.Len(24)
	if err := r.Err(); err != nil {
		return err
	}
	c.variants = c.variants[:0]
	for i := 0; i < nv; i++ {
		c.variants = append(c.variants, variantRec{
			next:      int32(r.Int()),
			entry:     int32(r.Int()),
			id:        r.U32(),
			rlen:      int32(r.U32()),
			nrefs:     int32(r.U32()),
			conflicts: int32(r.U32()),
		})
	}
	// Cross-reference validation before any arena slicing: a bad rlen or
	// pool index would otherwise panic downstream, not error.
	for i := range c.entries {
		e := &c.entries[i]
		if int(e.head) >= nv || e.head < -1 || int(e.tail) >= nv || e.tail < -1 {
			return fmt.Errorf("xbcore: entry %d links variants %d..%d of %d", i, e.head, e.tail, nv)
		}
	}
	for i := range c.variants {
		v := &c.variants[i]
		if int(v.next) >= nv || v.next < -1 {
			return fmt.Errorf("xbcore: variant %d links to %d of %d", i, v.next, nv)
		}
		if int(v.entry) >= ne || v.entry < 0 {
			return fmt.Errorf("xbcore: variant %d owned by entry %d of %d", i, v.entry, ne)
		}
		if v.rlen < 0 || int(v.rlen) > c.quota {
			return fmt.Errorf("xbcore: variant %d stores %d uops, quota %d", i, v.rlen, c.quota)
		}
		if v.nrefs < 0 || int(v.nrefs) > c.maxOrders {
			return fmt.Errorf("xbcore: variant %d has %d refs, max %d", i, v.nrefs, c.maxOrders)
		}
	}
	c.rseqArena = c.rseqArena[:0]
	c.rseqArena = grown(c.rseqArena, nv*c.quota)
	for i := range c.rseqArena {
		c.rseqArena[i] = isa.UopID(r.U64())
	}
	c.refsArena = c.refsArena[:0]
	c.refsArena = grown(c.refsArena, nv*c.maxOrders)
	for i := range c.refsArena {
		c.refsArena[i] = lineRef{bank: int8(r.U8()), way: int8(r.U8())}
	}
	idxSize := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if idxSize <= 0 || idxSize&(idxSize-1) != 0 || 4*ne > 3*idxSize {
		return fmt.Errorf("xbcore: index size %d cannot hold %d entries", idxSize, ne)
	}
	c.idxKeys = make([]isa.Addr, idxSize)
	c.idxVals = make([]int32, idxSize)
	for i := range c.idxVals {
		c.idxVals[i] = -1
	}
	for i := range c.entries {
		c.idxInsert(c.entries[i].endIP, int32(i))
	}
	c.validLines = r.Int()
	c.usedSlots = r.Int()
	c.Allocs = r.U64()
	c.Evictions = r.U64()
	c.Shares = r.U64()
	c.SetSearches = r.U64()
	c.ComplexXBs = r.U64()
	c.Extensions = r.U64()
	c.Containments = r.U64()
	c.Replacements = r.U64()
	return r.Err()
}

// entryIndex returns e's index into the fixed entry table, -1 for nil —
// the serializable form of the runState's prevEntry pointer.
func (t *XBTB) entryIndex(e *Entry) int {
	if e == nil {
		return -1
	}
	for i := range t.entries {
		if &t.entries[i] == e {
			return i
		}
	}
	return -1
}

// entryAt is the inverse of entryIndex, bounds-checked for corrupt blobs.
func (t *XBTB) entryAt(i int) (*Entry, error) {
	if i == -1 {
		return nil, nil
	}
	if i < 0 || i >= len(t.entries) {
		return nil, fmt.Errorf("xbcore: XBTB entry index %d of %d", i, len(t.entries))
	}
	return &t.entries[i], nil
}

// SaveState appends the XBTB's dynamic state.
func (t *XBTB) SaveState(w *snapshot.Writer) {
	w.U64(t.tick)
	w.U64(t.Lookups)
	w.U64(t.Hits)
	w.U64(t.Promotions)
	w.U64(t.Depromotions)
	w.Len(len(t.entries))
	for i := range t.entries {
		e := &t.entries[i]
		w.Bool(e.valid)
		w.U64(uint64(e.xbIP))
		w.U64(e.stamp)
		w.U8(uint8(e.Class))
		savePtr(w, e.Taken)
		savePtr(w, e.Fall)
		w.U8(e.Counter)
		w.Bool(e.Promoted)
		w.Bool(e.PromotedTaken)
		w.U8(e.VioBudget)
		w.U8(e.Conform)
		w.Bool(e.LastTaken)
		savePtr(w, e.PromotedTo)
	}
}

// LoadState restores state saved by SaveState into a same-geometry XBTB.
func (t *XBTB) LoadState(r *snapshot.Reader) error {
	t.tick = r.U64()
	t.Lookups = r.U64()
	t.Hits = r.U64()
	t.Promotions = r.U64()
	t.Depromotions = r.U64()
	r.LenExact(len(t.entries))
	for i := range t.entries {
		e := &t.entries[i]
		e.valid = r.Bool()
		e.xbIP = isa.Addr(r.U64())
		e.stamp = r.U64()
		e.Class = isa.Class(r.U8())
		e.Taken = loadPtr(r)
		e.Fall = loadPtr(r)
		e.Counter = r.U8()
		e.Promoted = r.Bool()
		e.PromotedTaken = r.Bool()
		e.VioBudget = r.U8()
		e.Conform = r.U8()
		e.LastTaken = r.Bool()
		e.PromotedTo = loadPtr(r)
	}
	return r.Err()
}

// SaveState appends the XiBTB's dynamic state (both cascade levels).
func (x *XiBTB) SaveState(w *snapshot.Writer) {
	w.U64(x.hist)
	w.Len(len(x.histTags))
	for i := range x.histTags {
		w.U64(uint64(x.histTags[i]))
		savePtr(w, x.histPtrs[i])
	}
	for i := range x.baseTags {
		w.U64(uint64(x.baseTags[i]))
		savePtr(w, x.basePtrs[i])
	}
}

// LoadState restores state saved by SaveState into a same-geometry XiBTB.
func (x *XiBTB) LoadState(r *snapshot.Reader) error {
	x.hist = r.U64()
	r.LenExact(len(x.histTags))
	for i := range x.histTags {
		x.histTags[i] = isa.Addr(r.U64())
		x.histPtrs[i] = loadPtr(r)
	}
	for i := range x.baseTags {
		x.baseTags[i] = isa.Addr(r.U64())
		x.basePtrs[i] = loadPtr(r)
	}
	return r.Err()
}

// SaveState appends the XRSB's dynamic state.
func (x *XRSB) SaveState(w *snapshot.Writer) {
	w.Len(len(x.slots))
	for _, a := range x.slots {
		w.U64(uint64(a))
	}
	w.Bools(x.live)
	w.Int(x.top)
	w.Int(x.depth)
}

// LoadState restores state saved by SaveState into a same-depth XRSB.
func (x *XRSB) LoadState(r *snapshot.Reader) error {
	r.LenExact(len(x.slots))
	for i := range x.slots {
		x.slots[i] = isa.Addr(r.U64())
	}
	r.BoolsInto(x.live)
	x.top = r.Int()
	x.depth = r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if x.top < 0 || x.top >= len(x.slots) {
		return fmt.Errorf("xbcore: XRSB top %d of %d", x.top, len(x.slots))
	}
	if x.depth < 0 || x.depth > len(x.slots) {
		return fmt.Errorf("xbcore: XRSB depth %d of %d", x.depth, len(x.slots))
	}
	return nil
}
