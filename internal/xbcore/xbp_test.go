package xbcore

import (
	"testing"

	"xbc/internal/frontend"
)

func TestXBPKindsDiffer(t *testing.T) {
	s := xbcTestStream(t, 20, 150_000)
	results := map[string]frontend.Metrics{}
	for _, kind := range []XBPKind{XBPGshare, XBPBimodal, XBPTournament} {
		cfg := DefaultConfig(32 * 1024)
		cfg.XBP = kind
		s.Reset()
		results[kind.String()] = New(cfg, frontend.DefaultConfig()).Run(s)
	}
	t.Logf("gshare: miss=%d/%d bw=%.3f", results["gshare"].CondMiss, results["gshare"].CondExec, results["gshare"].Bandwidth())
	t.Logf("bimodal: miss=%d/%d bw=%.3f", results["bimodal"].CondMiss, results["bimodal"].CondExec, results["bimodal"].Bandwidth())
	t.Logf("tournament: miss=%d/%d bw=%.3f", results["tournament"].CondMiss, results["tournament"].CondExec, results["tournament"].Bandwidth())
	if results["gshare"].CondMiss == results["bimodal"].CondMiss {
		t.Error("gshare and bimodal produced identical mispredict counts")
	}
	cfg := DefaultConfig(32 * 1024)
	cfg.NextXB = true
	s.Reset()
	mn := New(cfg, frontend.DefaultConfig()).Run(s)
	t.Logf("nextxb: hits=%v misses=%v miss%%=%.2f", mn.Extra["nxb_hits"], mn.Extra["nxb_misses"], mn.UopMissRate())
	if mn.Extra["nxb_hits"] == 0 {
		t.Error("next-XB predictor never hit")
	}
}
