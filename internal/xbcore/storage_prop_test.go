package xbcore

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"xbc/internal/isa"
)

// This file pins the arrayed, arena-backed Cache to a reference model:
// the original map-of-pointers storage implementation, kept here verbatim
// as oracleCache. Randomized insert/evict/extend/fetch/conflict sequences
// are driven through both; every return value, statistic counter, and
// derived metric must be identical. The oracle is deliberately the slow,
// obvious implementation — pointer-chasing maps and per-line slices — so
// a divergence always indicts the optimized layout, not the model.

// oracleLine is one physical bank line of the reference model.
type oracleLine struct {
	valid bool
	endIP isa.Addr
	order uint8
	count uint8
	uops  []isa.UopID // count uops in reverse order; capacity = BankUops
	stamp uint64
}

func (l *oracleLine) matches(endIP isa.Addr, order int, chunk []isa.UopID) bool {
	if !l.valid || l.endIP != endIP || int(l.order) != order || int(l.count) != len(chunk) {
		return false
	}
	for i, u := range chunk {
		if l.uops[i] != u {
			return false
		}
	}
	return true
}

// oracleVariant is one logical XB of the reference model.
type oracleVariant struct {
	id        uint32
	rseq      []isa.UopID // uops from the end (reverse program order)
	refs      []lineRef   // per order, the believed line location
	conflicts int         // dynamic-placement pressure counter
}

func (v *oracleVariant) orders(bankUops int) int {
	return (len(v.rseq) + bankUops - 1) / bankUops
}

func (v *oracleVariant) chunk(order, bankUops int) []isa.UopID {
	lo := order * bankUops
	hi := lo + bankUops
	if hi > len(v.rseq) {
		hi = len(v.rseq)
	}
	return v.rseq[lo:hi]
}

// oracleEntry groups the variants sharing one ending address.
type oracleEntry struct {
	endIP    isa.Addr
	variants []*oracleVariant
	nextID   uint32
}

func (e *oracleEntry) variantByID(id uint32) *oracleVariant {
	for _, v := range e.variants {
		if v.id == id {
			return v
		}
	}
	return nil
}

// oracleCache is the reference XBC storage: the pre-arena implementation.
type oracleCache struct {
	cfg     Config
	lines   []oracleLine // sets * banks * ways
	entries map[isa.Addr]*oracleEntry
	tick    uint64

	validLines int
	usedSlots  int

	residentScratch []bool

	// Statistics, named exactly as on Cache so the driver can compare.
	Allocs       uint64
	Evictions    uint64
	Shares       uint64
	SetSearches  uint64
	ComplexXBs   uint64
	Extensions   uint64
	Containments uint64
	Replacements uint64
}

func newOracleCache(cfg Config) (*oracleCache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Sets * cfg.Banks * cfg.Ways
	c := &oracleCache{
		cfg:             cfg,
		lines:           make([]oracleLine, n),
		entries:         make(map[isa.Addr]*oracleEntry),
		residentScratch: make([]bool, cfg.MaxOrders()),
	}
	backing := make([]isa.UopID, n*cfg.BankUops)
	for i := range c.lines {
		c.lines[i].uops = backing[i*cfg.BankUops : i*cfg.BankUops : (i+1)*cfg.BankUops]
	}
	return c, nil
}

func (c *oracleCache) setOf(endIP isa.Addr) int {
	return int(uint64(endIP>>1) & uint64(c.cfg.Sets-1))
}

func (c *oracleCache) lineAt(set, bank, way int) *oracleLine {
	return &c.lines[(set*c.cfg.Banks+bank)*c.cfg.Ways+way]
}

func (c *oracleCache) stampFor(order int) uint64 {
	return c.tick<<3 + uint64(7-order)
}

func (c *oracleCache) findLine(set int, endIP isa.Addr, order int, chunk []isa.UopID, excludeBanks uint) (lineRef, bool) {
	for b := 0; b < c.cfg.Banks; b++ {
		if excludeBanks&(1<<uint(b)) != 0 {
			continue
		}
		for w := 0; w < c.cfg.Ways; w++ {
			if c.lineAt(set, b, w).matches(endIP, order, chunk) {
				return lineRef{bank: int8(b), way: int8(w)}, true
			}
		}
	}
	return lineRef{}, false
}

func (c *oracleCache) ensureChunk(set int, endIP isa.Addr, order int, chunk []isa.UopID, usedBanks, avoidBanks uint, share bool) (lineRef, uint) {
	if ref, ok := c.findLine(set, endIP, order, chunk, usedBanks); ok && share {
		c.Shares++
		return ref, usedBanks | 1<<uint(ref.bank)
	}
	ref := c.pickVictim(set, usedBanks, avoidBanks)
	ln := c.lineAt(set, int(ref.bank), int(ref.way))
	if ln.valid {
		c.Evictions++
		c.usedSlots -= int(ln.count)
	} else {
		c.validLines++
	}
	c.usedSlots += len(chunk)
	c.Allocs++
	c.tick++
	buf := append(ln.uops[:0], chunk...)
	*ln = oracleLine{valid: true, endIP: endIP, order: uint8(order), count: uint8(len(chunk)), stamp: c.stampFor(order), uops: buf}
	return ref, usedBanks | 1<<uint(ref.bank)
}

func (c *oracleCache) pickVictim(set int, usedBanks, avoidBanks uint) lineRef {
	best := lineRef{bank: -1}
	bestScore := ^uint64(0)
	considered := false
	for pass := 0; pass < 2; pass++ {
		for b := 0; b < c.cfg.Banks; b++ {
			if usedBanks&(1<<uint(b)) != 0 {
				continue
			}
			if c.cfg.SmartPlacement && pass == 0 && avoidBanks&(1<<uint(b)) != 0 {
				continue
			}
			for w := 0; w < c.cfg.Ways; w++ {
				ln := c.lineAt(set, b, w)
				score := ln.stamp
				if !ln.valid {
					score = 0
				}
				if !considered || score < bestScore {
					best = lineRef{bank: int8(b), way: int8(w)}
					bestScore = score
					considered = true
				}
			}
		}
		if considered || !c.cfg.SmartPlacement {
			break
		}
	}
	if best.bank < 0 {
		panic("xbcore: no bank available for placement")
	}
	return best
}

func (c *oracleCache) residentBanksFrom(set int, endIP isa.Addr, v *oracleVariant, fromOrder int) uint {
	banks := uint(0)
	for o := fromOrder; o < v.orders(c.cfg.BankUops) && o < len(v.refs); o++ {
		ref := v.refs[o]
		if ref.bank < 0 {
			continue
		}
		if c.lineAt(set, int(ref.bank), int(ref.way)).matches(endIP, o, v.chunk(o, c.cfg.BankUops)) {
			banks |= 1 << uint(ref.bank)
		}
	}
	return banks
}

func (c *oracleCache) Insert(endIP isa.Addr, rseq []isa.UopID, avoidBanks uint) (id uint32, kind InsertKind, wasResident bool) {
	if len(rseq) == 0 || len(rseq) > c.cfg.Quota {
		panic("xbcore: insert of empty or over-quota XB")
	}
	set := c.setOf(endIP)
	e := c.entries[endIP]
	if e == nil {
		e = &oracleEntry{endIP: endIP}
		c.entries[endIP] = e
	}

	var bestV *oracleVariant
	bestCommon := 0
	for _, v := range e.variants {
		common := commonReversePrefix(rseq, v.rseq)
		if common > bestCommon || (bestV == nil && common > 0) {
			bestV, bestCommon = v, common
		}
	}

	switch {
	case bestV != nil && bestCommon == len(rseq) && len(bestV.rseq) >= len(rseq):
		c.Containments++
		resident := c.materialize(set, e, bestV, len(rseq), avoidBanks, true)
		return bestV.id, InsertContained, resident
	case bestV != nil && bestCommon == len(bestV.rseq):
		c.Extensions++
		bestV.rseq = append(bestV.rseq[:0], rseq...)
		c.materialize(set, e, bestV, len(rseq), avoidBanks, true)
		return bestV.id, InsertExtended, false
	case bestV != nil && bestCommon > 0 && c.cfg.ComplexXB:
		c.ComplexXBs++
		v := c.newVariant(e, rseq)
		c.materialize(set, e, v, len(rseq), avoidBanks, true)
		return v.id, InsertComplex, false
	default:
		v := c.newVariant(e, rseq)
		c.materialize(set, e, v, len(rseq), avoidBanks, c.cfg.ComplexXB)
		return v.id, InsertNew, false
	}
}

func (c *oracleCache) newVariant(e *oracleEntry, rseq []isa.UopID) *oracleVariant {
	v := &oracleVariant{
		id:   e.nextID,
		rseq: append(make([]isa.UopID, 0, c.cfg.Quota), rseq...),
		refs: make([]lineRef, 0, c.cfg.MaxOrders()),
	}
	e.nextID++
	e.variants = append(e.variants, v)
	return v
}

func (c *oracleCache) materialize(set int, e *oracleEntry, v *oracleVariant, upTo int, avoidBanks uint, share bool) bool {
	orders := (upTo + c.cfg.BankUops - 1) / c.cfg.BankUops
	for len(v.refs) < v.orders(c.cfg.BankUops) {
		v.refs = append(v.refs, lineRef{bank: -1})
	}
	usedBanks := c.residentBanksFrom(set, e.endIP, v, orders)
	resident := c.residentScratch[:orders]
	for o := range resident {
		resident[o] = false
	}
	allResident := true
	for o := 0; o < orders; o++ {
		chunk := v.chunk(o, c.cfg.BankUops)
		ref := v.refs[o]
		if ref.bank >= 0 && usedBanks&(1<<uint(ref.bank)) == 0 &&
			c.lineAt(set, int(ref.bank), int(ref.way)).matches(e.endIP, o, chunk) {
			resident[o] = true
			usedBanks |= 1 << uint(ref.bank)
			continue
		}
		if fr, ok := c.findLine(set, e.endIP, o, chunk, usedBanks); ok && share {
			v.refs[o] = fr
			resident[o] = true
			usedBanks |= 1 << uint(fr.bank)
			c.Shares++
			continue
		}
		allResident = false
	}
	if allResident {
		c.tick++
		for o := 0; o < orders; o++ {
			ref := v.refs[o]
			c.lineAt(set, int(ref.bank), int(ref.way)).stamp = c.stampFor(o)
		}
		return true
	}
	for o := 0; o < orders; o++ {
		if resident[o] {
			continue
		}
		chunk := v.chunk(o, c.cfg.BankUops)
		ref, nowUsed := c.ensureChunk(set, e.endIP, o, chunk, usedBanks, avoidBanks, share)
		usedBanks = nowUsed
		v.refs[o] = ref
	}
	return false
}

func (c *oracleCache) Fetch(endIP isa.Addr, variantID uint32, length int, dynRseq []isa.UopID) FetchResult {
	e := c.entries[endIP]
	if e == nil {
		return FetchResult{}
	}
	v := e.variantByID(variantID)
	if v == nil || len(v.rseq) < length {
		return FetchResult{}
	}
	if commonReversePrefix(v.rseq, dynRseq) < length {
		return FetchResult{}
	}
	orders := (length + c.cfg.BankUops - 1) / c.cfg.BankUops
	res := FetchResult{OK: true}
	pinned := c.residentBanksFrom(c.setOf(endIP), endIP, v, orders)
	for o := 0; o < orders; o++ {
		chunk := v.chunk(o, c.cfg.BankUops)
		ref := v.refs[o]
		stale := ref.bank < 0 ||
			res.Banks&(1<<uint(ref.bank)) != 0 ||
			!c.lineAt(c.setOf(endIP), int(ref.bank), int(ref.way)).matches(endIP, o, chunk)
		if stale {
			if !c.cfg.SetSearch {
				return FetchResult{}
			}
			fr, ok := c.findLine(c.setOf(endIP), endIP, o, chunk, res.Banks|pinned)
			if !ok {
				return FetchResult{}
			}
			v.refs[o] = fr
			res.Searched = true
			c.SetSearches++
			ref = fr
		}
		res.Banks |= 1 << uint(ref.bank)
	}
	c.tick++
	set := c.setOf(endIP)
	for o := 0; o < orders; o++ {
		ref := v.refs[o]
		c.lineAt(set, int(ref.bank), int(ref.way)).stamp = c.stampFor(o)
	}
	return res
}

func (c *oracleCache) Locate(endIP isa.Addr, dynRseq []isa.UopID, length int) (uint32, bool) {
	e := c.entries[endIP]
	if e == nil {
		return 0, false
	}
	for _, v := range e.variants {
		if len(v.rseq) >= length && commonReversePrefix(v.rseq, dynRseq[:length]) == length {
			return v.id, true
		}
	}
	return 0, false
}

func (c *oracleCache) NoteConflict(endIP isa.Addr, variantID uint32, length int, conflictBanks uint) bool {
	e := c.entries[endIP]
	if e == nil {
		return false
	}
	v := e.variantByID(variantID)
	if v == nil {
		return false
	}
	v.conflicts++
	const threshold = 4
	if !c.cfg.DynamicPlacement || v.conflicts < threshold {
		return false
	}
	v.conflicts = 0
	set := c.setOf(endIP)
	orders := (length + c.cfg.BankUops - 1) / c.cfg.BankUops
	if orders > len(v.refs) {
		orders = len(v.refs)
	}
	used := c.residentBanksFrom(set, endIP, v, 0)
	for o := 0; o < orders; o++ {
		ref := v.refs[o]
		if ref.bank < 0 || conflictBanks&(1<<uint(ref.bank)) == 0 {
			continue
		}
		chunk := v.chunk(o, c.cfg.BankUops)
		src := c.lineAt(set, int(ref.bank), int(ref.way))
		if !src.matches(endIP, o, chunk) {
			continue
		}
		forbidden := (used &^ (1 << uint(ref.bank))) | conflictBanks
		if forbidden == 1<<uint(c.cfg.Banks)-1 {
			continue
		}
		dstRef := c.pickVictim(set, forbidden, 0)
		dst := c.lineAt(set, int(dstRef.bank), int(dstRef.way))
		if dst.valid && dst.stamp > src.stamp {
			continue
		}
		*src, *dst = *dst, *src
		used = used&^(1<<uint(ref.bank)) | 1<<uint(dstRef.bank)
		v.refs[o] = dstRef
		c.Replacements++
		return true
	}
	return false
}

func (c *oracleCache) Redundancy() float64 {
	copies := map[isa.UopID]int{}
	total := 0
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.valid {
			continue
		}
		for k := 0; k < int(ln.count); k++ {
			copies[ln.uops[k]]++
			total++
		}
	}
	if len(copies) == 0 {
		return 0
	}
	return float64(total) / float64(len(copies))
}

func (c *oracleCache) Fragmentation() float64 {
	slots := c.validLines * c.cfg.BankUops
	if slots == 0 {
		return 0
	}
	return 1 - float64(c.usedSlots)/float64(slots)
}

func (c *oracleCache) Utilization() float64 {
	return float64(c.usedSlots) / float64(len(c.lines)*c.cfg.BankUops)
}

func (c *oracleCache) CheckInvariants() error {
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.valid {
			continue
		}
		if ln.count == 0 || int(ln.count) > c.cfg.BankUops {
			return fmt.Errorf("xbcore: oracle line %d holds %d uops", i, ln.count)
		}
		if int(ln.order) >= c.cfg.MaxOrders() {
			return fmt.Errorf("xbcore: oracle line %d has order %d", i, ln.order)
		}
	}
	ips := make([]isa.Addr, 0, len(c.entries))
	//xbc:ignore nondeterm key collection; sorted before use
	for endIP := range c.entries {
		ips = append(ips, endIP)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	for _, endIP := range ips {
		e := c.entries[endIP]
		set := c.setOf(endIP)
		for _, v := range e.variants {
			if len(v.rseq) > c.cfg.Quota {
				return fmt.Errorf("xbcore: oracle variant of %#x has %d uops", endIP, len(v.rseq))
			}
			banks := uint(0)
			for o := 0; o < v.orders(c.cfg.BankUops) && o < len(v.refs); o++ {
				ref := v.refs[o]
				if ref.bank < 0 {
					continue
				}
				if !c.lineAt(set, int(ref.bank), int(ref.way)).matches(endIP, o, v.chunk(o, c.cfg.BankUops)) {
					continue
				}
				if banks&(1<<uint(ref.bank)) != 0 {
					return fmt.Errorf("xbcore: oracle variant of %#x has two resident chunks in bank %d", endIP, ref.bank)
				}
				banks |= 1 << uint(ref.bank)
			}
		}
	}
	return nil
}

// --- driver ---

// propRecord remembers one inserted variant so later operations can aim
// fetches, locates, and conflict notes at real identities.
type propRecord struct {
	endIP isa.Addr
	id    uint32
	rseq  []isa.UopID
}

func checkStorageStats(t *testing.T, step int, c *Cache, o *oracleCache) {
	t.Helper()
	type pair struct {
		name     string
		got, ref uint64
	}
	for _, p := range []pair{
		{"Allocs", c.Allocs, o.Allocs},
		{"Evictions", c.Evictions, o.Evictions},
		{"Shares", c.Shares, o.Shares},
		{"SetSearches", c.SetSearches, o.SetSearches},
		{"ComplexXBs", c.ComplexXBs, o.ComplexXBs},
		{"Extensions", c.Extensions, o.Extensions},
		{"Containments", c.Containments, o.Containments},
		{"Replacements", c.Replacements, o.Replacements},
	} {
		if p.got != p.ref {
			t.Fatalf("step %d: %s = %d, oracle %d", step, p.name, p.got, p.ref)
		}
	}
	if g, r := c.Redundancy(), o.Redundancy(); g != r {
		t.Fatalf("step %d: Redundancy = %v, oracle %v", step, g, r)
	}
	if g, r := c.Fragmentation(), o.Fragmentation(); g != r {
		t.Fatalf("step %d: Fragmentation = %v, oracle %v", step, g, r)
	}
	if g, r := c.Utilization(), o.Utilization(); g != r {
		t.Fatalf("step %d: Utilization = %v, oracle %v", step, g, r)
	}
	// The invariant checker must agree too: with ComplexXB disabled,
	// duplicate same-content lines are legal, and a lazily-repaired stale
	// reference can transiently alias one — the old storage reached the
	// same states, so equivalence (not absolute cleanliness) is the
	// property. Absolute invariant checking under realistic traffic is
	// TestCacheInvariantsUnderRandomTraffic's job.
	err1, err2 := c.CheckInvariants(), o.CheckInvariants()
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("step %d: invariant checkers diverge: cache %v, oracle %v", step, err1, err2)
	}
}

func runStorageProp(t *testing.T, cfg Config, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	c, err := NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o, err := newOracleCache(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// A small address pool forces set collisions, evictions, and complex
	// variants; per-address base sequences make shared suffixes (and so
	// containment/extension cases) the common case rather than a fluke.
	addrs := make([]isa.Addr, 10)
	base := make(map[isa.Addr][]isa.UopID)
	for i := range addrs {
		a := isa.Addr(0x1000 + 0x20*rng.Intn(64))
		addrs[i] = a
		if base[a] == nil {
			seq := make([]isa.UopID, cfg.Quota)
			for k := range seq {
				seq[k] = isa.Uop(isa.Addr(0x4000+0x8*rng.Intn(256)), rng.Intn(2))
			}
			base[a] = seq
		}
	}
	var recs []propRecord
	bankAll := uint(1)<<uint(cfg.Banks) - 1

	for step := 0; step < 800; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert: containments, extensions, complex variants
			a := addrs[rng.Intn(len(addrs))]
			l := 1 + rng.Intn(cfg.Quota)
			rseq := append([]isa.UopID(nil), base[a][:l]...)
			if l > 1 && rng.Intn(4) == 0 {
				// Perturb a non-head uop: same reverse prefix up to the
				// mutation, so this exercises the complex-XB case.
				rseq[1+rng.Intn(l-1)] ^= 0x4
			}
			avoid := uint(rng.Intn(int(bankAll) + 1))
			id1, k1, r1 := c.Insert(a, rseq, avoid)
			id2, k2, r2 := o.Insert(a, rseq, avoid)
			if id1 != id2 || k1 != k2 || r1 != r2 {
				t.Fatalf("step %d: Insert(%#x, len %d) = (%d, %v, %v), oracle (%d, %v, %v)",
					step, a, l, id1, k1, r1, id2, k2, r2)
			}
			recs = append(recs, propRecord{endIP: a, id: id1, rseq: rseq})
		case op < 7 && len(recs) > 0: // fetch a previously inserted variant
			r := recs[rng.Intn(len(recs))]
			length := 1 + rng.Intn(len(r.rseq))
			dyn := r.rseq
			if rng.Intn(8) == 0 {
				// Diverged dynamic path: must miss identically.
				dyn = append([]isa.UopID(nil), r.rseq...)
				dyn[rng.Intn(length)] ^= 0x4
			}
			f1 := c.Fetch(r.endIP, r.id, length, dyn)
			f2 := o.Fetch(r.endIP, r.id, length, dyn)
			if f1 != f2 {
				t.Fatalf("step %d: Fetch(%#x, v%d, len %d) = %+v, oracle %+v",
					step, r.endIP, r.id, length, f1, f2)
			}
		case op < 8 && len(recs) > 0: // locate by content
			r := recs[rng.Intn(len(recs))]
			length := 1 + rng.Intn(len(r.rseq))
			id1, ok1 := c.Locate(r.endIP, r.rseq, length)
			id2, ok2 := o.Locate(r.endIP, r.rseq, length)
			if id1 != id2 || ok1 != ok2 {
				t.Fatalf("step %d: Locate(%#x, len %d) = (%d, %v), oracle (%d, %v)",
					step, r.endIP, length, id1, ok1, id2, ok2)
			}
		case op < 9 && len(recs) > 0: // bank-conflict pressure
			r := recs[rng.Intn(len(recs))]
			length := 1 + rng.Intn(len(r.rseq))
			mask := uint(rng.Intn(int(bankAll) + 1))
			m1 := c.NoteConflict(r.endIP, r.id, length, mask)
			m2 := o.NoteConflict(r.endIP, r.id, length, mask)
			if m1 != m2 {
				t.Fatalf("step %d: NoteConflict(%#x, v%d, banks %#x) = %v, oracle %v",
					step, r.endIP, r.id, mask, m1, m2)
			}
		default: // probe identities that may not exist
			a := addrs[rng.Intn(len(addrs))]
			id := uint32(rng.Intn(6))
			length := 1 + rng.Intn(cfg.Quota)
			f1 := c.Fetch(a, id, length, base[a])
			f2 := o.Fetch(a, id, length, base[a])
			if f1 != f2 {
				t.Fatalf("step %d: probe Fetch(%#x, v%d, len %d) = %+v, oracle %+v",
					step, a, id, length, f1, f2)
			}
		}
		if step%97 == 0 {
			checkStorageStats(t, step, c, o)
		}
	}
	checkStorageStats(t, 800, c, o)
	if err := c.CheckErr(); err != nil {
		t.Fatalf("insert-time checks: %v", err)
	}
}

func TestStorageMatchesMapOracle(t *testing.T) {
	cfgs := []struct {
		name string
		mod  func(*Config)
	}{
		{"default", func(*Config) {}},
		{"checked", func(c *Config) { c.Check = true }},
		{"no-set-search", func(c *Config) { c.SetSearch = false }},
		{"no-complex", func(c *Config) { c.ComplexXB = false }},
		{"no-smart-placement", func(c *Config) { c.SmartPlacement = false }},
		{"dynamic-placement", func(c *Config) { c.DynamicPlacement = true }},
	}
	for _, tc := range cfgs {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				cfg := DefaultConfig(4 * 1024) // small: evictions happen constantly
				tc.mod(&cfg)
				runStorageProp(t, cfg, seed)
			}
		})
	}
}
