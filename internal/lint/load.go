package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package.
type Package struct {
	Path  string // import path ("xbc/internal/xbcore"; fixtures use their absolute dir)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module without the go
// tool: module-internal imports are resolved from source under the module
// root, everything else is delegated to the standard library's source
// importer (which compiles GOROOT packages from source, so the loader
// works without network access or installed export data).
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	pkgs       map[string]*Package
	loading    map[string]bool
	typechecks map[string]int
	std        types.ImporterFrom
}

// TypeChecks reports how many times the loader has parsed and
// type-checked the package from scratch. Anything above one for a given
// path means the memoization regressed and the driver is re-doing the
// most expensive step of a lint run per dependent package.
func (l *Loader) TypeChecks(importPath string) int { return l.typechecks[importPath] }

// NewLoader creates a loader rooted at the module containing dir (found by
// walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:       fset,
		ModRoot:    root,
		ModPath:    modPath,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		typechecks: make(map[string]int),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal packages load
// from source under the module root, all others go to the stdlib source
// importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// LoadDir parses and type-checks the single package in dir (test files
// excluded), caching by import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)
	l.typechecks[importPath]++

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// goFilesIn lists the non-test Go files of dir, sorted.
func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadPattern resolves a package pattern relative to the module root:
// "./..." loads every module package, "./internal/xbcore" (or the bare
// import path) loads one.
func (l *Loader) LoadPattern(pattern string) ([]*Package, error) {
	switch {
	case pattern == "./..." || pattern == "...":
		return l.loadAll()
	case strings.HasPrefix(pattern, "./"):
		rel := filepath.FromSlash(strings.TrimPrefix(pattern, "./"))
		path := l.ModPath
		if rel != "" && rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(filepath.Join(l.ModRoot, rel), path)
		if err != nil {
			return nil, err
		}
		return []*Package{pkg}, nil
	case pattern == l.ModPath || strings.HasPrefix(pattern, l.ModPath+"/"):
		rel := strings.TrimPrefix(strings.TrimPrefix(pattern, l.ModPath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), pattern)
		if err != nil {
			return nil, err
		}
		return []*Package{pkg}, nil
	default:
		return nil, fmt.Errorf("lint: unsupported pattern %q (use ./... or ./dir)", pattern)
	}
}

// loadAll walks the module tree and loads every directory holding Go
// files, skipping testdata, hidden directories, and .github.
func (l *Loader) loadAll() ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(l.ModRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := d.Name()
		if path != l.ModRoot && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		names, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModRoot, path)
		if err != nil {
			return err
		}
		importPath := l.ModPath
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(path, importPath)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// fixtureLoader is the process-wide loader behind LoadFixture. Fixtures
// only import the standard library, and the source importer re-compiles
// GOROOT packages from scratch per importer instance — a fresh loader
// per fixture made every fixture suite pay the full sync/context/fmt
// type-check again. One shared instance amortizes that to once per test
// binary. Fixture packages are keyed (and import-path'd) by absolute
// directory, since distinct analyzers all name their fixture dir "a".
var (
	fixtureMu     sync.Mutex
	fixtureLoader *Loader
)

// LoadFixture parses and type-checks a fixture directory as a standalone
// package (stdlib imports only), for the linttest harness. Results are
// memoized process-wide by absolute path.
func LoadFixture(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if fixtureLoader == nil {
		fset := token.NewFileSet()
		fixtureLoader = &Loader{
			Fset:       fset,
			ModRoot:    abs,
			ModPath:    "\x00none", // no module-internal imports in fixtures
			pkgs:       make(map[string]*Package),
			loading:    make(map[string]bool),
			typechecks: make(map[string]int),
		}
		fixtureLoader.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	}
	return fixtureLoader.LoadDir(abs, abs)
}
