// Package cfg builds intra-procedural control-flow graphs over go/ast
// function bodies, for the flow-aware analyzers in internal/lint. The
// graph is deliberately simple: basic blocks hold whole statements (plus
// the condition/tag expressions that guard branches), edges follow
// if/for/range/switch/select/label/goto/break/continue/return, and
// nothing descends into function literals — a literal's body is a
// separate function and gets its own graph.
//
// Statement granularity is the right resolution for the analyzers built
// on top (held-lock sets, context-check reachability): a dataflow fact
// changes at statement boundaries, and the AST node stored in the block
// is the same pointer the analyzer sees when it walks the source, so
// facts computed here can be joined back onto syntax with a map lookup.
package cfg

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// A Block is a basic block: statements that execute in sequence, ending
// in a transfer of control to one of Succs. Nodes may be empty for
// synthetic join points. Cond holds a branch condition evaluated at the
// end of the block (an *ast.Expr from an if or for), nil otherwise.
type Block struct {
	Index int
	Kind  string // "entry", "exit", "if.then", "for.body", ... for debugging
	Nodes []ast.Node
	Succs []*Block

	// Infinite marks a for-loop head with no condition (or a constant
	// true condition): control cannot leave through the loop test.
	Infinite bool

	// Stmt points back at the statement a head block belongs to: the
	// *ast.ForStmt on a "for.head", the *ast.RangeStmt on a "range.head".
	// Nil on other blocks. Analyzers use it to report at the loop.
	Stmt ast.Stmt
}

// A Graph is the CFG of one function body. Entry is Blocks[0]; Exit is
// the unique synthetic return target (return statements and falling off
// the end both edge to it). Blocks unreachable from Entry are kept (the
// dataflow engine simply never visits them).
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// New builds the CFG for a function body. A nil body (declaration
// without a definition) yields a two-block graph with Entry wired
// straight to Exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{labels: map[string]*labelInfo{}}
	entry := b.newBlock("entry")
	b.exit = b.newBlock("exit")
	b.curr = entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.curr, b.exit)
	b.resolveGotos()
	return &Graph{Entry: entry, Exit: b.exit, Blocks: b.blocks}
}

// Preds computes the predecessor map on demand.
func (g *Graph) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(g.Blocks))
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			preds[s] = append(preds[s], blk)
		}
	}
	return preds
}

// String renders the graph for tests: one line per block with its kind,
// node count, and successor indices.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		var succs []int
		for _, s := range blk.Succs {
			succs = append(succs, s.Index)
		}
		sort.Ints(succs)
		fmt.Fprintf(&sb, "b%d %s nodes=%d succs=%v\n", blk.Index, blk.Kind, len(blk.Nodes), succs)
	}
	return sb.String()
}

// labelInfo tracks the three targets a label can name: the labeled
// statement itself (for goto), and — when the labeled statement is a
// loop/switch/select — its break and continue destinations.
type labelInfo struct {
	target  *Block // goto destination
	breakTo *Block
	contTo  *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	blocks []*Block
	exit   *Block
	curr   *Block

	// Innermost enclosing break/continue targets. Switch/select push a
	// break target with a nil continue (continue skips them and binds to
	// the enclosing loop).
	breakStack []*Block
	contStack  []*Block

	labels       map[string]*labelInfo
	pendingLabel string // set by LabeledStmt for the construct it labels
	gotos        []pendingGoto

	// fallthroughTo is the next case clause's block while building a
	// switch clause body.
	fallthroughTo *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.blocks), Kind: kind}
	b.blocks = append(b.blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// terminate ends the current block after a jump (return/break/...): what
// follows syntactically is unreachable until an edge targets it.
func (b *builder) terminate() {
	b.curr = b.newBlock("unreachable")
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct being built,
// registering its break/continue targets.
func (b *builder) takeLabel(breakTo, contTo *Block) {
	if b.pendingLabel == "" {
		return
	}
	li := b.labels[b.pendingLabel]
	li.breakTo = breakTo
	li.contTo = contTo
	b.pendingLabel = ""
}

func (b *builder) pushLoop(breakTo, contTo *Block) {
	b.breakStack = append(b.breakStack, breakTo)
	b.contStack = append(b.contStack, contTo)
}

func (b *builder) popLoop() {
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.contStack = b.contStack[:len(b.contStack)-1]
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.curr.Nodes = append(b.curr.Nodes, s.Init)
		}
		b.curr.Nodes = append(b.curr.Nodes, s.Cond)
		condBlk := b.curr
		then := b.newBlock("if.then")
		after := b.newBlock("if.done")
		b.edge(condBlk, then)
		b.curr = then
		b.stmtList(s.Body.List)
		b.edge(b.curr, after)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(condBlk, els)
			b.curr = els
			b.stmt(s.Else)
			b.edge(b.curr, after)
		} else {
			b.edge(condBlk, after)
		}
		b.curr = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.curr.Nodes = append(b.curr.Nodes, s.Init)
		}
		head := b.newBlock("for.head")
		head.Stmt = s
		b.edge(b.curr, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		} else {
			head.Infinite = true
		}
		body := b.newBlock("for.body")
		after := b.newBlock("for.done")
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		contTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			contTo = post
		}
		b.takeLabel(after, contTo)
		b.pushLoop(after, contTo)
		b.curr = body
		b.stmtList(s.Body.List)
		b.edge(b.curr, contTo)
		b.popLoop()
		b.curr = after

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		head.Stmt = s
		head.Nodes = append(head.Nodes, s)
		b.edge(b.curr, head)
		body := b.newBlock("range.body")
		after := b.newBlock("range.done")
		b.edge(head, body)
		b.edge(head, after)
		b.takeLabel(after, head)
		b.pushLoop(after, head)
		b.curr = body
		b.stmtList(s.Body.List)
		b.edge(b.curr, head)
		b.popLoop()
		b.curr = after

	case *ast.SwitchStmt:
		b.switchLike(s.Init, s.Tag, s.Body, "switch")

	case *ast.TypeSwitchStmt:
		b.switchLike(s.Init, s.Assign, s.Body, "typeswitch")

	case *ast.SelectStmt:
		// The select itself sits in the head block as a marker node (the
		// dispatch point); its comm statements and clause bodies flow
		// through the per-clause blocks. Consumers walking node subtrees
		// must therefore not descend into a SelectStmt node — see
		// lockset.InspectNode.
		b.curr.Nodes = append(b.curr.Nodes, s)
		after := b.newBlock("select.done")
		b.takeLabel(after, nil)
		head := b.curr
		b.breakStack = append(b.breakStack, after)
		b.contStack = append(b.contStack, nil)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock("select.comm")
			b.edge(head, blk)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			b.curr = blk
			b.stmtList(cc.Body)
			b.edge(b.curr, after)
		}
		b.breakStack = b.breakStack[:len(b.breakStack)-1]
		b.contStack = b.contStack[:len(b.contStack)-1]
		// select{} with no clauses blocks forever: no edge to after.
		b.curr = after

	case *ast.LabeledStmt:
		name := s.Label.Name
		target := b.newBlock("label." + name)
		b.edge(b.curr, target)
		b.curr = target
		li := &labelInfo{target: target}
		b.labels[name] = li
		b.pendingLabel = name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.curr.Nodes = append(b.curr.Nodes, s)
		b.edge(b.curr, b.exit)
		b.terminate()

	case *ast.BranchStmt:
		b.curr.Nodes = append(b.curr.Nodes, s)
		switch s.Tok.String() {
		case "break":
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.breakTo != nil {
					b.edge(b.curr, li.breakTo)
				}
			} else if n := len(b.breakStack); n > 0 {
				b.edge(b.curr, b.breakStack[n-1])
			}
			b.terminate()
		case "continue":
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.contTo != nil {
					b.edge(b.curr, li.contTo)
				}
			} else {
				// Innermost loop continue target: switch/select push nil.
				for i := len(b.contStack) - 1; i >= 0; i-- {
					if b.contStack[i] != nil {
						b.edge(b.curr, b.contStack[i])
						break
					}
				}
			}
			b.terminate()
		case "goto":
			b.gotos = append(b.gotos, pendingGoto{from: b.curr, label: s.Label.Name})
			b.terminate()
		case "fallthrough":
			b.edge(b.curr, b.fallthroughTo)
			b.terminate()
		}

	default:
		// Plain statements: decl, assign, expr, send, defer, go, inc/dec,
		// empty. All execute straight through.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.curr.Nodes = append(b.curr.Nodes, s)
	}
}

// switchLike builds switch and type-switch: the head evaluates init and
// the tag, every clause is a successor of the head, and absent a default
// clause the head also edges to the join block.
func (b *builder) switchLike(init ast.Stmt, tag ast.Node, body *ast.BlockStmt, kind string) {
	if init != nil {
		b.curr.Nodes = append(b.curr.Nodes, init)
	}
	if tag != nil {
		b.curr.Nodes = append(b.curr.Nodes, tag)
	}
	head := b.curr
	after := b.newBlock(kind + ".done")
	b.takeLabel(after, nil)

	clauses := make([]*Block, len(body.List))
	hasDefault := false
	for i, c := range body.List {
		cc := c.(*ast.CaseClause)
		clauses[i] = b.newBlock(kind + ".case")
		b.edge(head, clauses[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}

	b.breakStack = append(b.breakStack, after)
	b.contStack = append(b.contStack, nil)
	savedFT := b.fallthroughTo
	for i, c := range body.List {
		cc := c.(*ast.CaseClause)
		if i+1 < len(clauses) {
			b.fallthroughTo = clauses[i+1]
		} else {
			b.fallthroughTo = after
		}
		b.curr = clauses[i]
		b.stmtList(cc.Body)
		b.edge(b.curr, after)
	}
	b.fallthroughTo = savedFT
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.contStack = b.contStack[:len(b.contStack)-1]
	b.curr = after
}

func (b *builder) resolveGotos() {
	for _, g := range b.gotos {
		if li := b.labels[g.label]; li != nil {
			b.edge(g.from, li.target)
		}
	}
}
