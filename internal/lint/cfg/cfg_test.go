package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as a function body and returns its block.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

func build(t *testing.T, body string) *Graph {
	t.Helper()
	return New(parseBody(t, body))
}

// reachable returns the set of blocks reachable from entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

func TestStraightLine(t *testing.T) {
	g := build(t, "x := 1\nx++\n_ = x")
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3:\n%s", len(g.Entry.Nodes), g)
	}
}

func TestIfElseJoins(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 { x = 2 } else { x = 3 }\n_ = x")
	// Entry must have two successors (then, else) and both must reach exit.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("entry succs = %d, want 2:\n%s", len(g.Entry.Succs), g)
	}
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 { x = 2 }\n_ = x")
	// Condition block edges to then and to the join.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("entry succs = %d, want 2:\n%s", len(g.Entry.Succs), g)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := build(t, "for i := 0; i < 3; i++ { _ = i }\n_ = 1")
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no for.head block:\n%s", g)
	}
	if head.Infinite {
		t.Fatalf("conditioned loop marked infinite:\n%s", g)
	}
	// The head must be its own ancestor through body -> post -> head.
	seen := map[*Block]bool{}
	work := append([]*Block{}, head.Succs...)
	looped := false
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if b == head {
			looped = true
			break
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		work = append(work, b.Succs...)
	}
	if !looped {
		t.Fatalf("no back edge to loop head:\n%s", g)
	}
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestInfiniteForMarked(t *testing.T) {
	g := build(t, "for { _ = 1 }")
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil || !head.Infinite {
		t.Fatalf("infinite loop head not marked:\n%s", g)
	}
	// Without a break, exit must be unreachable.
	if reachable(g)[g.Exit] {
		t.Fatalf("exit reachable through infinite loop:\n%s", g)
	}
}

func TestInfiniteForWithBreak(t *testing.T) {
	g := build(t, "for { break }")
	if !reachable(g)[g.Exit] {
		t.Fatalf("break does not reach exit:\n%s", g)
	}
}

func TestRangeLoop(t *testing.T) {
	g := build(t, "s := []int{1}\nfor _, v := range s { _ = v }\n_ = 2")
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "range.head" {
			head = b
		}
	}
	if head == nil || len(head.Succs) != 2 {
		t.Fatalf("range head should branch to body and done:\n%s", g)
	}
}

func TestReturnTerminates(t *testing.T) {
	g := build(t, "return\n_ = 1")
	// The statement after return sits in an unreachable block.
	reach := reachable(g)
	var unreach *Block
	for _, b := range g.Blocks {
		if !reach[b] && len(b.Nodes) > 0 {
			unreach = b
		}
	}
	if unreach == nil {
		t.Fatalf("statement after return should be unreachable:\n%s", g)
	}
}

func TestSwitchDefault(t *testing.T) {
	// With a default clause the head must NOT edge straight to the join.
	g := build(t, "x := 1\nswitch x {\ncase 1:\n\tx = 2\ndefault:\n\tx = 3\n}\n_ = x")
	for _, s := range g.Entry.Succs {
		if s.Kind == "switch.done" {
			t.Fatalf("switch with default edges head to done:\n%s", g)
		}
	}
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestSwitchNoDefault(t *testing.T) {
	g := build(t, "x := 1\nswitch x {\ncase 1:\n\tx = 2\n}\n_ = x")
	found := false
	for _, s := range g.Entry.Succs {
		if s.Kind == "switch.done" {
			found = true
		}
	}
	if !found {
		t.Fatalf("switch without default must edge head to done:\n%s", g)
	}
}

func TestFallthrough(t *testing.T) {
	g := build(t, "x := 1\nswitch x {\ncase 1:\n\tfallthrough\ncase 2:\n\tx = 9\n}\n_ = x")
	// The first case block must edge to the second case block.
	var cases []*Block
	for _, b := range g.Blocks {
		if b.Kind == "switch.case" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 2 {
		t.Fatalf("want 2 case blocks:\n%s", g)
	}
	linked := false
	for _, s := range cases[0].Succs {
		if s == cases[1] {
			linked = true
		}
	}
	if !linked {
		t.Fatalf("fallthrough edge missing:\n%s", g)
	}
}

func TestSelect(t *testing.T) {
	g := build(t, "ch := make(chan int)\ndone := make(chan int)\nselect {\ncase v := <-ch:\n\t_ = v\ncase <-done:\n\treturn\n}\n_ = 1")
	comms := 0
	for _, b := range g.Blocks {
		if b.Kind == "select.comm" {
			comms++
		}
	}
	if comms != 2 {
		t.Fatalf("want 2 comm blocks, got %d:\n%s", comms, g)
	}
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	g := build(t, "select {}\n_ = 1")
	if reachable(g)[g.Exit] {
		t.Fatalf("empty select should not reach exit:\n%s", g)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, "outer:\nfor {\n\tfor {\n\t\tbreak outer\n\t}\n}\n_ = 1")
	if !reachable(g)[g.Exit] {
		t.Fatalf("labeled break must escape both loops:\n%s", g)
	}
}

func TestLabeledContinueStaysInLoop(t *testing.T) {
	g := build(t, "outer:\nfor {\n\tfor {\n\t\tcontinue outer\n\t}\n}")
	if reachable(g)[g.Exit] {
		t.Fatalf("labeled continue must not escape the outer infinite loop:\n%s", g)
	}
}

func TestGoto(t *testing.T) {
	g := build(t, "x := 0\nloop:\nx++\nif x < 3 { goto loop }\n_ = x")
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	// goto must create a back edge: label block reachable from the goto.
	var label *Block
	for _, b := range g.Blocks {
		if b.Kind == "label.loop" {
			label = b
		}
	}
	if label == nil {
		t.Fatalf("no label block:\n%s", g)
	}
	preds := g.Preds()
	if len(preds[label]) < 2 {
		t.Fatalf("label block should have fallthrough + goto preds, got %d:\n%s", len(preds[label]), g)
	}
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	if !reachable(g)[g.Exit] {
		t.Fatal("nil body: exit must be reachable from entry")
	}
}

func TestContinueInsideSwitchBindsToLoop(t *testing.T) {
	g := build(t, "for i := 0; i < 3; i++ {\n\tswitch i {\n\tcase 1:\n\t\tcontinue\n\t}\n\t_ = i\n}")
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	// The continue block must edge to for.post, not switch.done.
	var contBlk *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok.String() == "continue" {
				contBlk = b
			}
		}
	}
	if contBlk == nil {
		t.Fatalf("no continue block:\n%s", g)
	}
	ok := false
	for _, s := range contBlk.Succs {
		if s.Kind == "for.post" {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("continue inside switch must target the loop post:\n%s", g)
	}
}
