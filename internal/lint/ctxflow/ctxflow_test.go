package ctxflow_test

import (
	"testing"

	"xbc/internal/lint/ctxflow"
	"xbc/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "testdata/src/a")
}
