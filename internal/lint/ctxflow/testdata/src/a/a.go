// Fixture for the ctxflow analyzer: unchecked blocking in ctx-taking
// functions (rule A), bare operations on shared channels (rule B), and
// the cancellation shapes that must stay clean.
package a

import (
	"context"
	"sync"
)

type S struct {
	ch   chan int
	done chan struct{}
}

func touch(ctx context.Context) {}

// --- rule A: ctx-taking functions ---

// recvUnchecked blocks before the context is ever consulted.
func recvUnchecked(ctx context.Context, ch chan int) int {
	v := <-ch // want "blocking receive with no context check"
	_ = ctx   // a bare mention is not a check
	return v
}

// recvChecked consults ctx.Err first: the must-fact covers both
// branches of the if.
func recvChecked(ctx context.Context, ch chan int) int {
	if ctx.Err() != nil {
		return 0
	}
	return <-ch
}

// recvDelegated passes ctx along, which counts as the check.
func recvDelegated(ctx context.Context, ch chan int) int {
	touch(ctx)
	return <-ch
}

// recvOnePathUnchecked: the fast path skips the check, and one
// unchecked path taints the join.
func recvOnePathUnchecked(ctx context.Context, ch chan int, fast bool) int {
	if !fast {
		touch(ctx)
	}
	return <-ch // want "blocking receive with no context check"
}

// selectChecked blocks inside a select with a ctx case: exempt.
func selectChecked(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// afterSelect: passing through a ctx-guarded select checks the context
// for everything after it.
func afterSelect(ctx context.Context, ch chan int) int {
	select {
	case <-ctx.Done():
		return 0
	default:
	}
	return <-ch
}

// waitUnchecked parks on a WaitGroup with the ctx never consulted.
func waitUnchecked(ctx context.Context, wg *sync.WaitGroup) {
	wg.Wait() // want "WaitGroup.Wait with no context check"
}

// waitChecked delegates ctx before waiting.
func waitChecked(ctx context.Context, wg *sync.WaitGroup) {
	touch(ctx)
	wg.Wait()
}

// spinForever accepted a context it can never honor.
func spinForever(ctx context.Context) {
	n := 0
	for { // want "loop has no exit"
		n++
	}
}

// loopWithExit leaves through the ctx case: clean.
func loopWithExit(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-ch:
			_ = v
		}
	}
}

// suppressedWait documents an accepted bounded wait.
func suppressedWait(ctx context.Context, wg *sync.WaitGroup) {
	//xbc:ignore ctxflow fixture: workers observe ctx, Wait is bounded by their exit
	wg.Wait()
}

// --- rule B: shared channels ---

// push sends on a struct-field channel with no escape hatch.
func (s *S) push(v int) {
	s.ch <- v // want "blocking send on shared channel S.ch outside any select"
}

// waitDone parks on a field channel.
func (s *S) waitDone() {
	<-s.done // want "blocking receive on shared channel S.done outside any select"
}

// pushCtx: rule B claims the op; rule A must not double-report it.
func (s *S) pushCtx(ctx context.Context, v int) {
	s.ch <- v // want "blocking send on shared channel S.ch"
}

// pushOrDrop wraps the send in a select: exempt.
func (s *S) pushOrDrop(v int) bool {
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

// local channels pair up in plain sight: exempt.
func local() int {
	ch := make(chan int, 1)
	ch <- 1
	return <-ch
}

// drain ranges over the shared channel: close is the protocol.
func (s *S) drain() int {
	n := 0
	for v := range s.ch {
		n += v
	}
	return n
}

var pkgCh = make(chan int)

// pkgSend blocks on a package-level channel.
func pkgSend(v int) {
	pkgCh <- v // want "blocking send on shared channel a.pkgCh"
}

// joinSuppressed documents an accepted bare receive.
func (s *S) joinSuppressed() {
	//xbc:ignore ctxflow fixture: partner goroutine provably sends exactly once
	<-s.done
}
