// Package ctxflow enforces that blocking operations stay cancellable.
// Two rules:
//
// Rule A — context-taking functions. In any function with a
// context.Context parameter, a blocking operation (bare channel send or
// receive, sync.WaitGroup.Wait, sync.Cond.Wait) must be preceded on
// every path by a context check: calling a ctx method (Done/Err/
// Deadline/Value), passing ctx to a call, or passing through a select
// with a ctx-guarded case. "Checked" is a must-fact over the CFG, so a
// single unchecked path is a finding. An infinite for-loop that no
// break, return, or goto can leave is also reported: the function
// accepted a context it can never honor.
//
// Rule B — shared channels, any function. A bare send or receive on a
// channel that lives in a struct field or package-level variable, outside
// any select, blocks this goroutine forever if the partner never arrives
// (closed-at-drain channels turn it into a panic or a permanent sleep).
// Locals and captured locals are exempt — their pairing is visible
// locally — as is ranging over a channel, whose termination protocol is
// close.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"xbc/internal/lint"
	"xbc/internal/lint/cfg"
	"xbc/internal/lint/dataflow"
	"xbc/internal/lint/lockset"
)

// Analyzer is the ctxflow check.
var Analyzer = &lint.Analyzer{
	Name:  "ctxflow",
	Doc:   "reports blocking operations unreachable by cancellation: unchecked blocking in ctx-taking functions, exitless loops in them, and bare sends/receives on shared (field or package-level) channels outside a select",
	Match: func(string) bool { return true },
	Run:   run,
}

func run(pass *lint.Pass) {
	info := pass.Pkg.Info
	fset := pass.Fset()

	// Channel operations appearing as a select comm are exempt from both
	// rules: the select is the multi-way wait that makes them stoppable.
	commOps := map[ast.Node]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cc, ok := n.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				return true
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch m.(type) {
				case *ast.SendStmt, *ast.UnaryExpr:
					commOps[m] = true
				}
				return true
			})
			return true
		})
	}

	// Rule B, flow-insensitive. Ops it reports are remembered so Rule A
	// does not report the same operation twice.
	flagged := map[ast.Node]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				if commOps[n] {
					return true
				}
				if id, ok := sharedChan(fset, info, n.Chan); ok {
					flagged[n] = true
					pass.Reportf(n.Arrow, "blocking send on shared channel %s outside any select; a receiver that never arrives parks this goroutine forever (add a done/ctx case)", id)
				}
			case *ast.UnaryExpr:
				if n.Op != token.ARROW || commOps[n] {
					return true
				}
				if id, ok := sharedChan(fset, info, n.X); ok {
					flagged[n] = true
					pass.Reportf(n.OpPos, "blocking receive on shared channel %s outside any select; a sender that never arrives parks this goroutine forever (add a done/ctx case)", id)
				}
			}
			return true
		})
	}

	// Rule A, per context-taking function unit.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					if ctxs := ctxParams(info, n.Type); len(ctxs) > 0 {
						checkCtxFunc(pass, n.Body, ctxs, commOps, flagged)
					}
				}
			case *ast.FuncLit:
				if ctxs := ctxParams(info, n.Type); len(ctxs) > 0 {
					checkCtxFunc(pass, n.Body, ctxs, commOps, flagged)
				}
			}
			return true
		})
	}
}

// ctxParams returns the objects of the function's named context.Context
// parameters.
func ctxParams(info *types.Info, ft *ast.FuncType) map[types.Object]bool {
	out := map[types.Object]bool{}
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		t := info.TypeOf(field.Type)
		if !isContext(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxFunc runs the must-checked dataflow over one ctx function.
func checkCtxFunc(pass *lint.Pass, body *ast.BlockStmt, ctxs map[types.Object]bool, commOps, flagged map[ast.Node]bool) {
	info := pass.Pkg.Info
	g := cfg.New(body)

	step := func(checked bool, n ast.Node) bool {
		if checked {
			return true
		}
		if nodeChecksCtx(info, ctxs, n) {
			return true
		}
		return false
	}

	flow := dataflow.Forward(g, dataflow.Problem[bool]{
		Entry: false,
		Transfer: func(b *cfg.Block, in bool) bool {
			checked := in
			for _, n := range b.Nodes {
				checked = step(checked, n)
			}
			return checked
		},
		Join:  func(a, b bool) bool { return a && b },
		Equal: func(a, b bool) bool { return a == b },
	})

	// Report pass: replay facts, flagging blocking ops met while the
	// must-checked fact is still false.
	for _, b := range g.Blocks {
		in, ok := flow.In[b]
		if !ok {
			continue // unreachable
		}
		checked := in
		for _, n := range b.Nodes {
			if !checked {
				reportBlocking(pass, n, commOps, flagged)
			}
			checked = step(checked, n)
		}
	}

	// Exitless infinite loops: the function accepted a ctx it can never
	// honor once such a loop is entered.
	reach := reachableFrom(g.Entry)
	for _, b := range g.Blocks {
		if !b.Infinite || !reach[b] {
			continue
		}
		if !reachableFrom(b)[g.Exit] {
			pass.Reportf(b.Stmt.Pos(), "function takes a context but this loop has no exit: no break, return, or goto leaves it, so cancellation is never honored")
		}
	}
}

// nodeChecksCtx reports whether executing the node consults the context:
// any call that mentions a ctx parameter (a ctx method, or ctx passed
// along), or a select with a ctx-guarded comm case. A bare identifier
// mention (ctx == nil) is not a check.
func nodeChecksCtx(info *types.Info, ctxs map[types.Object]bool, node ast.Node) bool {
	if sel, ok := node.(*ast.SelectStmt); ok {
		for _, c := range sel.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil && mentionsCtxCall(info, ctxs, cc.Comm) {
				return true
			}
		}
		return false
	}
	found := false
	lockset.InspectNode(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && callMentionsCtx(info, ctxs, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// mentionsCtxCall looks for a ctx-involving call anywhere under n
// (used for select comms, whose subtree is otherwise skipped).
func mentionsCtxCall(info *types.Info, ctxs map[types.Object]bool, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && callMentionsCtx(info, ctxs, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// callMentionsCtx reports whether the call is a ctx method call or
// passes a ctx parameter as an argument.
func callMentionsCtx(info *types.Info, ctxs map[types.Object]bool, call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && ctxs[info.Uses[id]] {
			switch sel.Sel.Name {
			case "Done", "Err", "Deadline", "Value":
				return true
			}
		}
	}
	for _, arg := range call.Args {
		ok := false
		ast.Inspect(arg, func(m ast.Node) bool {
			if id, isIdent := m.(*ast.Ident); isIdent && ctxs[info.Uses[id]] {
				ok = true
				return false
			}
			_, isLit := m.(*ast.FuncLit)
			return !isLit
		})
		if ok {
			return true
		}
	}
	return false
}

// reportBlocking flags the blocking operations inside one CFG node that
// rule B has not already reported and no select guards.
func reportBlocking(pass *lint.Pass, node ast.Node, commOps, flagged map[ast.Node]bool) {
	info := pass.Pkg.Info
	lockset.InspectNode(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !commOps[n] && !flagged[n] {
				pass.Reportf(n.Arrow, "blocking send with no context check on any path here; check ctx.Err or select on ctx.Done before blocking")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !commOps[n] && !flagged[n] {
				pass.Reportf(n.OpPos, "blocking receive with no context check on any path here; check ctx.Err or select on ctx.Done before blocking")
			}
		case *ast.CallExpr:
			if name, ok := blockingWait(info, n); ok {
				pass.Reportf(n.Pos(), "%s with no context check on any path here; a worker that never finishes blocks past cancellation", name)
			}
		}
		return true
	})
}

// blockingWait matches sync.WaitGroup.Wait and sync.Cond.Wait calls.
func blockingWait(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Wait" {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	switch named(recv.Type()) {
	case "WaitGroup":
		return "WaitGroup.Wait", true
	case "Cond":
		return "Cond.Wait", true
	}
	return "", false
}

func named(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// sharedChan classifies a channel expression as shared state: a struct
// field or a package-level variable. The returned name is the lock-style
// identity ("persister.ch", "pkg.done").
func sharedChan(fset *token.FileSet, info *types.Info, e ast.Expr) (string, bool) {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok {
			if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
				return string(lockset.ExprID(fset, info, e)), true
			}
			return "", false
		}
		// Package-qualified variable: other.Ch.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name(), true
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil && !v.IsField() && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name(), true
		}
	}
	return "", false
}

// reachableFrom returns the blocks reachable from start.
func reachableFrom(start *cfg.Block) map[*cfg.Block]bool {
	seen := map[*cfg.Block]bool{start: true}
	work := []*cfg.Block{start}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}
