// Package lockset computes may-held mutex sets over one function body,
// shared by the lockorder and atomicmix analyzers. A lock is identified
// by where it lives, not which instance holds it: a struct field is
// "Type.field", a package-level var is "pkg.name", a local is pinned to
// its declaration position. Two instances of the same type share an ID —
// deliberately, since a lock-order rule is a property of the lock class
// (every Server orders Server.mu before Job.mu), not of one instance.
//
// The analysis is a forward may-analysis (union join): a lock is in the
// set at a node if some path reaches the node with it held. Deferred
// unlocks do not remove the lock during flow — they run at return — but
// are recorded so exit checks can treat defer as releasing on every
// path. sync.TryLock/TryRLock are ignored (conditional acquisition).
package lockset

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"xbc/internal/lint"
	"xbc/internal/lint/cfg"
	"xbc/internal/lint/dataflow"
)

// ID names a lock class. See the package comment for the forms.
type ID string

// OpKind classifies a mutex method call.
type OpKind int

const (
	OpLock OpKind = iota
	OpRLock
	OpUnlock
	OpRUnlock
)

// Acquires reports whether the op adds the lock to the held set.
func (k OpKind) Acquires() bool { return k == OpLock || k == OpRLock }

func (k OpKind) String() string {
	switch k {
	case OpLock:
		return "Lock"
	case OpRLock:
		return "RLock"
	case OpUnlock:
		return "Unlock"
	default:
		return "RUnlock"
	}
}

// Op is one mutex method call resolved to a lock ID.
type Op struct {
	ID   ID
	Kind OpKind
	Call *ast.CallExpr
}

// Set maps each held lock to the position of the acquisition that put it
// in the set (the earliest across joined paths, for stable reports).
type Set map[ID]token.Pos

func (s Set) with(id ID, pos token.Pos) Set {
	n := make(Set, len(s)+1)
	for k, v := range s {
		n[k] = v
	}
	n[id] = pos
	return n
}

func (s Set) without(id ID) Set {
	if _, ok := s[id]; !ok {
		return s
	}
	n := make(Set, len(s))
	for k, v := range s {
		if k != id {
			n[k] = v
		}
	}
	return n
}

// IDs returns the held lock IDs in sorted order.
func (s Set) IDs() []ID {
	ids := make([]ID, 0, len(s))
	for id := range s {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func join(a, b Set) Set {
	n := make(Set, len(a)+len(b))
	for k, v := range a {
		n[k] = v
	}
	for k, v := range b {
		if old, ok := n[k]; !ok || v < old {
			n[k] = v
		}
	}
	return n
}

func equal(a, b Set) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if v2, ok := b[k]; !ok || v2 != v {
			return false
		}
	}
	return true
}

// Result is the converged analysis of one function body.
type Result struct {
	// Exit is the may-held set at function exit (some return path leaves
	// these locks held), before deferred unlocks run.
	Exit Set
	// DeferReleased holds the lock IDs some defer statement unlocks.
	DeferReleased map[ID]bool

	fset  *token.FileSet
	info  *types.Info
	graph *cfg.Graph
	in    map[*cfg.Block]Set
}

// Analyze runs the held-set analysis over body.
func Analyze(pkg *lint.Package, body *ast.BlockStmt) *Result {
	r := &Result{
		DeferReleased: map[ID]bool{},
		fset:          pkg.Fset,
		info:          pkg.Info,
		graph:         cfg.New(body),
	}
	flow := dataflow.Forward(r.graph, dataflow.Problem[Set]{
		Entry: Set{},
		Transfer: func(b *cfg.Block, in Set) Set {
			held := in
			for _, n := range b.Nodes {
				held = r.scan(n, held, nil)
			}
			return held
		},
		Join:  join,
		Equal: equal,
	})
	r.in = flow.In
	if exit, ok := flow.In[r.graph.Exit]; ok {
		r.Exit = exit
	} else {
		r.Exit = Set{}
	}
	return r
}

// WalkNodes replays held sets over every reachable node of the body in
// deterministic order: visit sees each AST node (pre-order within its
// statement) with the set held at that point. Function literals are not
// entered — a literal body is its own function.
func (r *Result) WalkNodes(visit func(held Set, n ast.Node)) {
	for _, b := range r.graph.Blocks {
		in, ok := r.in[b]
		if !ok {
			continue // unreachable
		}
		held := in
		for _, n := range b.Nodes {
			held = r.scan(n, held, visit)
		}
	}
}

// scan walks one CFG node's subtree in source order, applying mutex
// operations to the running held set. When visit is non-nil it is called
// at every node with the set held just before that node executes.
// Deferred and go'd calls do not change the flow-time set; deferred
// unlocks are recorded in DeferReleased.
func (r *Result) scan(node ast.Node, held Set, visit func(Set, ast.Node)) Set {
	skip := map[*ast.CallExpr]bool{}
	InspectNode(node, func(n ast.Node) bool {
		if visit != nil {
			visit(held, n)
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			skip[n.Call] = true
			if op, ok := MutexOp(r.fset, r.info, n.Call); ok && !op.Kind.Acquires() {
				r.DeferReleased[op.ID] = true
			}
		case *ast.GoStmt:
			skip[n.Call] = true
		case *ast.CallExpr:
			if skip[n] {
				return true
			}
			if op, ok := MutexOp(r.fset, r.info, n); ok {
				if op.Kind.Acquires() {
					held = held.with(op.ID, n.Pos())
				} else {
					held = held.without(op.ID)
				}
			}
		}
		return true
	})
	return held
}

// InspectNode walks a CFG node's subtree the way flow-sensitive
// consumers must: function literals are skipped (a literal's body is its
// own function), SelectStmt nodes are visited but never entered (the
// select is a marker in its head block; its comm statements and clause
// bodies flow through the per-clause blocks), and a RangeStmt contributes
// only its key/value/range expressions (the body statements live in their
// own blocks). f's return value gates descent as in ast.Inspect.
func InspectNode(node ast.Node, f func(ast.Node) bool) {
	var walk func(ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				return true
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SelectStmt:
				f(m)
				return false
			case *ast.RangeStmt:
				if !f(m) {
					return false
				}
				if m.Key != nil {
					walk(m.Key)
				}
				if m.Value != nil {
					walk(m.Value)
				}
				walk(m.X)
				return false
			}
			return f(m)
		})
	}
	walk(node)
}

// MutexOp resolves a call to a sync.Mutex/RWMutex (or sync.Locker)
// Lock/RLock/Unlock/RUnlock method and identifies the lock it operates
// on. TryLock variants and non-sync methods return ok=false.
func MutexOp(fset *token.FileSet, info *types.Info, call *ast.CallExpr) (Op, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return Op{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return Op{}, false
	}
	var kind OpKind
	switch fn.Name() {
	case "Lock":
		kind = OpLock
	case "RLock":
		kind = OpRLock
	case "Unlock":
		kind = OpUnlock
	case "RUnlock":
		kind = OpRUnlock
	default:
		return Op{}, false
	}
	// An embedded mutex promotes the method: s.Lock() where s embeds
	// sync.Mutex. The selection's index path names the embedded field,
	// which is the lock's true home.
	if msel, ok := info.Selections[sel]; ok {
		recv := deref(msel.Recv())
		if !isSyncMutex(recv) {
			if idx := msel.Index(); len(idx) > 1 {
				if st, ok := deref(recv).Underlying().(*types.Struct); ok && idx[0] < st.NumFields() {
					return Op{ID: ID(typeName(recv) + "." + st.Field(idx[0]).Name()), Kind: kind, Call: call}, true
				}
			}
			return Op{ID: ExprID(fset, info, sel.X), Kind: kind, Call: call}, true
		}
	}
	return Op{ID: ExprID(fset, info, sel.X), Kind: kind, Call: call}, true
}

// ExprID names the lock class an expression denotes.
func ExprID(fset *token.FileSet, info *types.Info, e ast.Expr) ID {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ExprID(fset, info, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return ExprID(fset, info, e.X)
		}
	case *ast.StarExpr:
		return ExprID(fset, info, e.X)
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok {
			return ID(typeName(s.Recv()) + "." + s.Obj().Name())
		}
		// Package-qualified: pkg.Mu.
		if obj := info.Uses[e.Sel]; obj != nil && obj.Pkg() != nil {
			return ID(obj.Pkg().Name() + "." + obj.Name())
		}
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj != nil && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return ID(obj.Pkg().Name() + "." + obj.Name())
			}
			// A local or parameter: pin to its declaration so same-named
			// locals in different functions stay distinct.
			pos := fset.Position(obj.Pos())
			return ID(fmt.Sprintf("%s@%s:%d", obj.Name(), pos.Filename, pos.Line))
		}
	}
	return ID(types.ExprString(e))
}

func deref(t types.Type) types.Type {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

func isSyncMutex(t types.Type) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// typeName renders the defined type's bare name ("Server" for *Server).
func typeName(t types.Type) string {
	t = deref(t)
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// OwnerType returns the "Type" part of a field-form ID, or "" for
// package-level and local locks. atomicmix uses it to match a held lock
// to the struct owning a mixed-access field.
func (id ID) OwnerType() string {
	for i := 0; i < len(id); i++ {
		if id[i] == '.' {
			return string(id[:i])
		}
		if id[i] == '@' {
			return ""
		}
	}
	return ""
}
