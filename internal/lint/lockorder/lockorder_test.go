package lockorder_test

import (
	"testing"

	"xbc/internal/lint/linttest"
	"xbc/internal/lint/lockorder"
)

func TestLockorder(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "testdata/src/a")
}
