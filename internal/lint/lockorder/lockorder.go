// Package lockorder builds a per-package lock-acquisition graph from
// sync.Mutex/RWMutex method calls and reports orderings that can
// deadlock. Lock identity is the lock class (struct field "Type.field",
// package var, or declaration-pinned local — see internal/lint/lockset),
// so the rules are properties of the code shape, not of one instance:
//
//   - re-acquiring a lock already held on some path (self-deadlock for
//     an aliasing receiver, an undefined two-instance order otherwise);
//   - calling, while holding a lock, a same-package function that may
//     acquire that same lock (transitive self-deadlock);
//   - a pair of locks acquired in both orders anywhere in the package
//     (a lock-order cycle: two goroutines taking opposite orders can
//     deadlock even though each path looks locally correct);
//   - a lock that may still be held at some return with no deferred
//     unlock (the caller inherits a silently held mutex).
//
// Held sets are may-analysis facts from a CFG dataflow, so a hazard on
// any path is reported even when other paths are clean.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"xbc/internal/lint"
	"xbc/internal/lint/lockset"
)

// Analyzer is the lockorder check.
var Analyzer = &lint.Analyzer{
	Name:  "lockorder",
	Doc:   "reports lock-order cycles, re-acquisition of held mutexes (directly or through same-package calls), and locks held at return without a deferred unlock",
	Match: func(string) bool { return true },
	Run:   run,
}

// edge is one observed acquisition order: to was acquired while from was
// held, first witnessed at pos.
type edge struct {
	pos token.Pos
	via string // "" for a direct acquire, else the called function's name
}

func run(pass *lint.Pass) {
	info := pass.Pkg.Info
	fset := pass.Fset()

	// Function declarations by object, for resolving same-package calls.
	decls := map[*types.Func]*ast.FuncDecl{}
	var declOrder []*types.Func
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
				declOrder = append(declOrder, fn)
			}
		}
	}

	// Transitive may-acquire summaries: the lock classes a call to fn can
	// take, directly or through same-package callees, to fixpoint.
	trans := map[*types.Func]map[lockset.ID]bool{}
	for _, fn := range declOrder {
		trans[fn] = directAcquires(fset, info, decls[fn].Body)
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range declOrder {
			ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := staticCallee(info, call)
				if callee == nil || callee == fn {
					return true
				}
				for id := range trans[callee] {
					if !trans[fn][id] {
						trans[fn][id] = true
						changed = true
					}
				}
				return true
			})
		}
	}

	// Analyze every function unit — declarations and literals — for held
	// sets, collecting order edges package-wide.
	edges := map[lockset.ID]map[lockset.ID]edge{}
	addEdge := func(from, to lockset.ID, pos token.Pos, via string) {
		m := edges[from]
		if m == nil {
			m = map[lockset.ID]edge{}
			edges[from] = m
		}
		if old, ok := m[to]; !ok || pos < old.pos {
			m[to] = edge{pos: pos, via: via}
		}
	}

	units := functionUnits(pass.Pkg.Files, info)
	for _, u := range units {
		res := lockset.Analyze(pass.Pkg, u.body)
		res.WalkNodes(func(held lockset.Set, n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if op, ok := lockset.MutexOp(fset, info, call); ok {
				if !op.Kind.Acquires() {
					return
				}
				if _, already := held[op.ID]; already {
					pass.Reportf(call.Pos(), "%s of %s while it is already held (self-deadlock if the receivers alias; an undefined two-instance order otherwise)", op.Kind, op.ID)
				}
				for from := range held {
					if from != op.ID {
						addEdge(from, op.ID, call.Pos(), "")
					}
				}
				return
			}
			if len(held) == 0 {
				return
			}
			callee := staticCallee(info, call)
			if callee == nil {
				return
			}
			acq := trans[callee]
			if len(acq) == 0 {
				return
			}
			var ids []lockset.ID
			for id := range acq {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				if _, already := held[id]; already {
					pass.Reportf(call.Pos(), "call to %s may acquire %s, which is already held here (transitive self-deadlock)", callee.Name(), id)
					continue
				}
				for from := range held {
					if from != id {
						addEdge(from, id, call.Pos(), callee.Name())
					}
				}
			}
		})

		// Unlock-on-every-path: a lock still may-held at exit with no
		// deferred release leaks to the caller.
		exitHeld := []lockset.ID{}
		for id := range res.Exit {
			if !res.DeferReleased[id] {
				exitHeld = append(exitHeld, id)
			}
		}
		sort.Slice(exitHeld, func(i, j int) bool { return exitHeld[i] < exitHeld[j] })
		for _, id := range exitHeld {
			pass.Reportf(res.Exit[id], "%s acquired here may still be held at some return; unlock on every path or defer the unlock", id)
		}
	}

	reportCycles(pass, edges)
}

// unit is one function body to analyze: a declaration or a literal.
type unit struct {
	body *ast.BlockStmt
}

// functionUnits returns every function body in source order: top-level
// declarations plus each function literal (whose body the enclosing
// function's analysis skips).
func functionUnits(files []*ast.File, info *types.Info) []unit {
	var units []unit
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					units = append(units, unit{body: n.Body})
				}
			case *ast.FuncLit:
				units = append(units, unit{body: n.Body})
			}
			return true
		})
	}
	return units
}

// directAcquires gathers the lock classes a body acquires directly,
// excluding function literals (they run on their own schedule).
func directAcquires(fset *token.FileSet, info *types.Info, body *ast.BlockStmt) map[lockset.ID]bool {
	out := map[lockset.ID]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := lockset.MutexOp(fset, info, call); ok && op.Kind.Acquires() {
				out[op.ID] = true
			}
		}
		return true
	})
	return out
}

// staticCallee resolves a call to a same-package function or method
// declaration, or nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// reportCycles finds strongly connected components of the order graph
// and reports every edge participating in one.
func reportCycles(pass *lint.Pass, edges map[lockset.ID]map[lockset.ID]edge) {
	var nodes []lockset.ID
	seen := map[lockset.ID]bool{}
	add := func(id lockset.ID) {
		if !seen[id] {
			seen[id] = true
			nodes = append(nodes, id)
		}
	}
	for from, m := range edges {
		add(from)
		for to := range m {
			add(to)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	succs := func(id lockset.ID) []lockset.ID {
		var out []lockset.ID
		for to := range edges[id] {
			out = append(out, to)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	scc := tarjan(nodes, succs)

	for _, from := range nodes {
		for _, to := range succs(from) {
			if scc[from] != scc[to] {
				continue
			}
			e := edges[from][to]
			cyc := cyclePath(from, to, succs, scc)
			msg := fmt.Sprintf("acquiring %s while holding %s conflicts with the reverse order elsewhere in the package (cycle: %s)", to, from, cyc)
			if e.via != "" {
				msg = fmt.Sprintf("call to %s acquires %s while %s is held, conflicting with the reverse order elsewhere (cycle: %s)", e.via, to, from, cyc)
			}
			pass.Reportf(e.pos, "%s", msg)
		}
	}
}

// cyclePath renders "from -> to -> ... -> from" following intra-SCC
// edges from to back to from.
func cyclePath(from, to lockset.ID, succs func(lockset.ID) []lockset.ID, scc map[lockset.ID]int) string {
	path := []lockset.ID{from, to}
	visited := map[lockset.ID]bool{from: true, to: true}
	curr := to
	for curr != from {
		advanced := false
		for _, nxt := range succs(curr) {
			if scc[nxt] != scc[from] {
				continue
			}
			if nxt == from {
				curr = from
				advanced = true
				break
			}
			if !visited[nxt] {
				visited[nxt] = true
				path = append(path, nxt)
				curr = nxt
				advanced = true
				break
			}
		}
		if !advanced {
			break // defensive; an SCC always closes the walk
		}
	}
	parts := make([]string, 0, len(path)+1)
	for _, id := range path {
		parts = append(parts, string(id))
	}
	parts = append(parts, string(from))
	return strings.Join(parts, " -> ")
}

// tarjan assigns each node its strongly-connected-component index,
// iteratively to stay stack-safe on large graphs.
func tarjan(nodes []lockset.ID, succs func(lockset.ID) []lockset.ID) map[lockset.ID]int {
	index := map[lockset.ID]int{}
	low := map[lockset.ID]int{}
	onStack := map[lockset.ID]bool{}
	comp := map[lockset.ID]int{}
	var stack []lockset.ID
	next, ncomp := 0, 0

	type frame struct {
		v  lockset.ID
		ss []lockset.ID
		i  int
	}
	for _, root := range nodes {
		if _, ok := index[root]; ok {
			continue
		}
		work := []frame{{v: root, ss: succs(root)}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.i < len(f.ss) {
				w := f.ss[f.i]
				f.i++
				if _, ok := index[w]; !ok {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{v: w, ss: succs(w)})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			if low[f.v] == index[f.v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == f.v {
						break
					}
				}
				ncomp++
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := &work[len(work)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
		}
	}
	return comp
}
