// Fixture for the lockorder analyzer: lock-order cycles, self
// re-acquisition (direct, via loops, via same-package calls), missing
// unlock on a path, and the shapes that must stay clean.
package a

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// ab and ba take the two locks in opposite orders: a classic ordering
// cycle. Both acquisition sites are implicated.
func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "conflicts with the reverse order"
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want "conflicts with the reverse order"
	a.mu.Unlock()
	b.mu.Unlock()
}

// double re-locks a held mutex: deadlock when the receivers alias.
func double(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want "while it is already held"
	a.mu.Unlock()
	a.mu.Unlock()
}

// lockA is a helper whose lock is visible in call summaries.
func lockA(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
}

// callsLockA holds A.mu across a call that takes it again.
func callsLockA(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockA(a) // want "transitive self-deadlock"
}

// leaky forgets the unlock on the early-return path.
func leaky(a *A, x bool) {
	a.mu.Lock() // want "may still be held at some return"
	if x {
		return
	}
	a.mu.Unlock()
}

// loopLeak re-locks on the continue path: iteration two deadlocks. The
// may-held loop exit also leaves the lock held at return.
func loopLeak(a *A, xs []int) {
	for _, x := range xs {
		a.mu.Lock() // want "while it is already held" "may still be held at some return"
		if x == 0 {
			continue
		}
		a.mu.Unlock()
	}
}

type E struct{ sync.Mutex }

// embedded locks through the promoted method; identity is E.Mutex.
func embedded(e *E) {
	e.Lock()
	e.Lock() // want "Lock of E.Mutex while it is already held"
	e.Unlock()
	e.Unlock()
}

type R struct{ mu sync.RWMutex }

// rlockTwice: a second RLock can deadlock against a writer queued
// between the two read acquisitions.
func rlockTwice(r *R) {
	r.mu.RLock()
	r.mu.RLock() // want "RLock of R.mu while it is already held"
	r.mu.RUnlock()
	r.mu.RUnlock()
}

// suppressedDouble documents an accepted re-lock.
func suppressedDouble(a *A) {
	a.mu.Lock()
	//xbc:ignore lockorder fixture: deliberate re-lock to prove suppression works
	a.mu.Lock()
	a.mu.Unlock()
	a.mu.Unlock()
}

// --- clean shapes below: no findings expected ---

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

// consistent1/consistent2 nest C before D everywhere: an order, not a
// cycle.
func consistent1(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func consistent2(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}

// branches releases on every path.
func branches(a *A, x bool) {
	a.mu.Lock()
	if x {
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
}

// deferred releases by defer: held through the function by design.
func deferred(a *A) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return 1
}

// spawned goroutines hold nothing of the spawner's: the literal is its
// own function and its lock nests under nothing here.
func spawned(a *A) {
	a.mu.Lock()
	go func() {
		a.mu.Lock()
		a.mu.Unlock()
	}()
	a.mu.Unlock()
}

// sequential takes the same two locks the cycle pair uses, but never
// nested, so it adds no edges.
func sequential(c *C, d *D) {
	c.mu.Lock()
	c.mu.Unlock()
	d.mu.Lock()
	d.mu.Unlock()
}

// unlockedCall drops the lock before calling the helper that retakes it.
func unlockedCall(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
	lockA(a)
}

var gmu sync.Mutex

// pkgLevel uses a package-scope mutex correctly.
func pkgLevel() {
	gmu.Lock()
	defer gmu.Unlock()
}
