// Package lint is the small static-analysis framework behind cmd/xbclint.
//
// It is a stdlib-only stand-in for golang.org/x/tools/go/analysis (which
// this repository deliberately does not depend on): an Analyzer inspects
// one type-checked package at a time and reports Diagnostics, a driver
// (cmd/xbclint) loads every module package and runs the analyzers whose
// Match function accepts the package path, and linttest replays analyzers
// over fixture packages with analysistest-style "// want" expectations.
//
// Findings are suppressed with a justified directive on the flagged line
// or the line directly above it:
//
//	//xbc:ignore <analyzer> <reason>
//
// A directive without a reason is itself a finding: every suppression in
// the tree must say why the flagged construct is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding the way compilers do, so editors can jump
// to it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Pkg   *Package
	diags []Diagnostic
	name  string
}

// Fset returns the file set the package was parsed into.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one static check.
type Analyzer struct {
	// Name is the identifier used in output and in ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Match reports whether the analyzer applies to a package import
	// path when the driver sweeps the whole module. The fixture harness
	// bypasses it.
	Match func(pkgPath string) bool
	// Run inspects the package and reports findings on the pass.
	Run func(*Pass)
}

// Finding is one diagnostic plus its suppression state: the driver and
// the structured output formats need to see suppressed findings (and the
// justification that silenced them), not just the survivors.
type Finding struct {
	Diagnostic
	Suppressed bool
	Reason     string // the directive's justification when Suppressed
}

// Analyze runs the analyzer over pkg and returns its findings with
// suppressed diagnostics filtered out; directive hygiene findings
// (malformed or stale //xbc:ignore) are included under the "directive"
// analyzer name.
func (a *Analyzer) Analyze(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range RunAnalyzers(pkg, []*Analyzer{a}, nil) {
		if !f.Suppressed {
			out = append(out, f.Diagnostic)
		}
	}
	return out
}

// RunAnalyzers runs the analyzers over pkg and returns every finding,
// suppressed ones included and marked. Directive hygiene is part of the
// result, reported under the "directive" analyzer:
//
//   - a reason-less //xbc:ignore is malformed (and suppresses nothing);
//   - a directive naming an analyzer that ran here yet suppressed no
//     finding is stale — the code it excused has moved or been fixed,
//     and keeping it would let future findings slip through silently;
//   - when known is non-nil, a directive naming an analyzer outside
//     that registry is a typo that would never suppress anything.
//
// Stale detection is deliberately scoped to analyzers that actually ran:
// running a subset (xbclint -run lockorder) must not condemn the other
// analyzers' directives.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, known []string) []Finding {
	ds := directivesOf(pkg)
	var out []Finding
	for _, p := range ds.malformed {
		// Malformed directives surface once per package run; the driver
		// deduplicates identical findings across pattern overlaps.
		out = append(out, Finding{Diagnostic: Diagnostic{Pos: p, Analyzer: "directive",
			Message: "//xbc:ignore needs an analyzer name and a justification: //xbc:ignore <analyzer> <reason>"}})
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{Pkg: pkg, name: a.Name}
		a.Run(pass)
		for _, d := range pass.diags {
			if dir := ds.suppressing(a.Name, d.Pos); dir != nil {
				dir.used = true
				out = append(out, Finding{Diagnostic: d, Suppressed: true, Reason: dir.reason})
			} else {
				out = append(out, Finding{Diagnostic: d})
			}
		}
	}
	var knownSet map[string]bool
	if known != nil {
		knownSet = make(map[string]bool, len(known))
		for _, k := range known {
			knownSet[k] = true
		}
	}
	for _, dir := range ds.all {
		switch {
		case dir.used:
		case ran[dir.analyzer]:
			out = append(out, Finding{Diagnostic: Diagnostic{Pos: dir.pos, Analyzer: "directive",
				Message: fmt.Sprintf("stale //xbc:ignore %s: the analyzer ran and this directive suppressed nothing; delete it, or fix it if the finding moved", dir.analyzer)}})
		case knownSet != nil && !knownSet[dir.analyzer]:
			out = append(out, Finding{Diagnostic: Diagnostic{Pos: dir.pos, Analyzer: "directive",
				Message: fmt.Sprintf("//xbc:ignore names unknown analyzer %q; it can never suppress anything", dir.analyzer)}})
		}
	}
	return out
}

// ignoreDirective is one parsed //xbc:ignore comment.
type ignoreDirective struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool // suppressed at least one finding this run
}

// directives indexes a package's suppression comments.
type directives struct {
	byLine    map[string]map[int][]*ignoreDirective // file -> line -> directives
	all       []*ignoreDirective
	malformed []token.Position
}

// suppressing returns the directive covering a finding at pos (same line
// or the line above), or nil.
func (ds *directives) suppressing(analyzer string, pos token.Position) *ignoreDirective {
	lines := ds.byLine[pos.Filename]
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[l] {
			if d.analyzer == analyzer {
				return d
			}
		}
	}
	return nil
}

const ignorePrefix = "//xbc:ignore"

// directivesOf parses every //xbc:ignore comment in the package.
func directivesOf(pkg *Package) *directives {
	ds := &directives{byLine: make(map[string]map[int][]*ignoreDirective)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //xbc:ignorexyz — not ours
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					ds.malformed = append(ds.malformed, pos)
					continue
				}
				d := &ignoreDirective{
					pos:      pos,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				}
				m := ds.byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]*ignoreDirective)
					ds.byLine[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], d)
				ds.all = append(ds.all, d)
			}
		}
	}
	return ds
}

// SortDiagnostics orders findings by file, line, column, analyzer for
// stable output.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// DirectiveLines returns, per file, the set of lines carrying a comment
// with the given //xbc:<name> directive (e.g. "hot"). Analyzers use it
// for their own annotations, like hotalloc's //xbc:hot.
func DirectiveLines(pkg *Package, name string) map[string]map[int]bool {
	prefix := "//xbc:" + name
	out := make(map[string]map[int]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, prefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					out[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return out
}

// Inspect walks every file of the pass's package in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
