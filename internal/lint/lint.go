// Package lint is the small static-analysis framework behind cmd/xbclint.
//
// It is a stdlib-only stand-in for golang.org/x/tools/go/analysis (which
// this repository deliberately does not depend on): an Analyzer inspects
// one type-checked package at a time and reports Diagnostics, a driver
// (cmd/xbclint) loads every module package and runs the analyzers whose
// Match function accepts the package path, and linttest replays analyzers
// over fixture packages with analysistest-style "// want" expectations.
//
// Findings are suppressed with a justified directive on the flagged line
// or the line directly above it:
//
//	//xbc:ignore <analyzer> <reason>
//
// A directive without a reason is itself a finding: every suppression in
// the tree must say why the flagged construct is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding the way compilers do, so editors can jump
// to it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Pkg   *Package
	diags []Diagnostic
	name  string
}

// Fset returns the file set the package was parsed into.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one static check.
type Analyzer struct {
	// Name is the identifier used in output and in ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Match reports whether the analyzer applies to a package import
	// path when the driver sweeps the whole module. The fixture harness
	// bypasses it.
	Match func(pkgPath string) bool
	// Run inspects the package and reports findings on the pass.
	Run func(*Pass)
}

// Analyze runs the analyzer over pkg and returns its findings with
// suppressed diagnostics filtered out and malformed directives reported.
func (a *Analyzer) Analyze(pkg *Package) []Diagnostic {
	pass := &Pass{Pkg: pkg, name: a.Name}
	a.Run(pass)
	dirs := directivesOf(pkg)
	// out must not alias pass.diags: the malformed-directive findings are
	// prepended, and a shared backing array would overwrite real findings
	// before the filter loop reads them.
	out := make([]Diagnostic, 0, len(pass.diags)+len(dirs.malformed))
	for _, d := range dirs.malformed {
		// Malformed directives surface once, from whichever analyzer
		// runs; the driver deduplicates identical findings.
		out = append(out, Diagnostic{Pos: d, Analyzer: "directive",
			Message: "//xbc:ignore needs an analyzer name and a justification: //xbc:ignore <analyzer> <reason>"})
	}
	for _, d := range pass.diags {
		if !dirs.suppresses(a.Name, d.Pos) {
			out = append(out, d)
		}
	}
	return out
}

// ignoreDirective is one parsed //xbc:ignore comment.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
}

// directives indexes a package's suppression comments.
type directives struct {
	byLine    map[string]map[int][]string // file -> line -> analyzer names
	malformed []token.Position
}

func (ds *directives) suppresses(analyzer string, pos token.Position) bool {
	lines := ds.byLine[pos.Filename]
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[l] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

const ignorePrefix = "//xbc:ignore"

// directivesOf parses every //xbc:ignore comment in the package.
func directivesOf(pkg *Package) *directives {
	ds := &directives{byLine: make(map[string]map[int][]string)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //xbc:ignorexyz — not ours
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					ds.malformed = append(ds.malformed, pos)
					continue
				}
				m := ds.byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					ds.byLine[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], fields[0])
			}
		}
	}
	return ds
}

// SortDiagnostics orders findings by file, line, column, analyzer for
// stable output.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// DirectiveLines returns, per file, the set of lines carrying a comment
// with the given //xbc:<name> directive (e.g. "hot"). Analyzers use it
// for their own annotations, like hotalloc's //xbc:hot.
func DirectiveLines(pkg *Package, name string) map[string]map[int]bool {
	prefix := "//xbc:" + name
	out := make(map[string]map[int]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, prefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					out[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return out
}

// Inspect walks every file of the pass's package in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
