// Package a is the hotalloc fixture: per-iteration allocations inside
// //xbc:hot regions trigger; the reuse idioms the simulator's hot loops
// rely on (self-append, slice-reset append, struct values) stay clean.
package a

import "fmt"

type item struct {
	id   int
	name string
}

// hotLoop demonstrates loop-level annotation: only the annotated loop is
// a hot region.
func hotLoop(items []item, scratch []int) []int {
	//xbc:hot
	for _, it := range items {
		p := &item{id: it.id} // want "escapes to the heap per iteration"
		_ = p
		buf := make([]int, 4) // want "make in hot region allocates per iteration"
		_ = buf
		fn := func() int { return it.id } // want "closure allocated per iteration"
		_ = fn
		tmp := []int{it.id} // want "slice literal in hot region allocates"
		_ = tmp
		m := map[int]bool{it.id: true} // want "map literal in hot region allocates"
		_ = m
		s := it.name + "!" // want "string concatenation in hot region allocates"
		_ = s
		msg := fmt.Sprintf("%d", it.id) // want "fmt.Sprintf allocates in hot region"
		_ = msg
		grown := append(scratch, it.id) // want "append in hot region without a reused destination"
		_ = grown
	}
	return scratch
}

// coldLoop is identical but unannotated: nothing triggers.
func coldLoop(items []item) []*item {
	var out []*item
	for i := range items {
		out = append(out, &item{id: items[i].id})
	}
	return out
}

// hotFunc demonstrates function-level annotation and the allowed reuse
// idioms.
//
//xbc:hot
func hotFunc(items []item, scratch []int) []int {
	scratch = scratch[:0]
	for _, it := range items {
		scratch = append(scratch, it.id) // amortized self-append: allowed
		v := item{id: it.id}             // struct value, no heap: allowed
		_ = v
		const tag = "a" + "b" // constant-folded concatenation: allowed
		_ = tag
	}
	out := append(scratch[:0], 1, 2) // slice-reset append: allowed
	//xbc:ignore hotalloc cold-start growth only, capacity-guarded by caller
	grow := make([]int, len(items))
	_ = grow
	return out
}
