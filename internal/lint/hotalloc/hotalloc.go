// Package hotalloc structurally guards the allocation-free hot loops the
// benchmark gates (BENCH_*.json allocs/op) protect dynamically: inside a
// region annotated //xbc:hot — a loop statement with the directive on the
// line above it, or a whole function with the directive in its doc
// comment — it flags every construct that allocates per iteration.
//
// Flagged: make, closures (func literals), slice/map composite literals,
// &T{...} (escaping composite literals), non-constant string
// concatenation, fmt.Sprint*/Errorf, and append to a destination that is
// neither reused in place (append(buf[:0], ...)) nor grown amortized
// (buf = append(buf, ...)).
//
// Amortized or cold-start allocations inside a hot region (for example a
// capacity-guarded make that only runs before the scratch buffer is warm)
// are suppressed with a justified //xbc:ignore hotalloc directive.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"xbc/internal/lint"
)

// Analyzer is the hotalloc check. It runs everywhere: it only fires
// inside //xbc:hot regions, so unannotated packages are free.
var Analyzer = &lint.Analyzer{
	Name:  "hotalloc",
	Doc:   "flags per-iteration allocation constructs inside //xbc:hot loops and functions",
	Match: func(string) bool { return true },
	Run:   run,
}

func run(pass *lint.Pass) {
	hotLines := lint.DirectiveLines(pass.Pkg, "hot")
	if len(hotLines) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		file := pass.Fset().Position(f.Pos()).Filename
		lines := hotLines[file]
		if len(lines) == 0 {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Doc != nil && docHasHot(fd.Doc) {
				checkRegion(pass, fd.Body)
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch n := n.(type) {
				case *ast.ForStmt:
					body = n.Body
				case *ast.RangeStmt:
					body = n.Body
				default:
					return true
				}
				line := pass.Fset().Position(n.Pos()).Line
				if lines[line-1] || lines[line] {
					checkRegion(pass, body)
					return false // region covered; nested loops are inside it
				}
				return true
			})
		}
	}
}

// docHasHot reports whether a doc comment group carries the //xbc:hot
// directive.
func docHasHot(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		if c.Text == "//xbc:hot" || strings.HasPrefix(c.Text, "//xbc:hot ") {
			return true
		}
	}
	return false
}

// checkRegion flags allocating constructs inside one hot region.
func checkRegion(pass *lint.Pass, body ast.Node) {
	info := pass.Pkg.Info
	allowedAppend := selfAppends(body)
	var flagged map[ast.Node]bool // composite literals already reported via &T{...}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocated per iteration in hot region; hoist it out of the loop")
			return false // its body allocates once per closure, not per iteration
		case *ast.CallExpr:
			switch callee(info, n) {
			case "make":
				pass.Reportf(n.Pos(), "make in hot region allocates per iteration; preallocate scratch outside the loop")
			case "append":
				if !allowedAppend[n] && !isSliceReset(n) {
					pass.Reportf(n.Pos(), "append in hot region without a reused destination; use buf = append(buf, ...) on preallocated scratch or append(buf[:0], ...)")
				}
			case "fmt.Sprintf", "fmt.Sprint", "fmt.Sprintln", "fmt.Errorf":
				pass.Reportf(n.Pos(), "%s allocates in hot region; format outside the loop or record raw values", callee(info, n))
			}
		case *ast.UnaryExpr:
			if lit, ok := compositeOperand(n); ok {
				pass.Reportf(n.Pos(), "&%s{...} in hot region escapes to the heap per iteration; reuse a preallocated value", typeName(info, lit))
				if flagged == nil {
					flagged = make(map[ast.Node]bool)
				}
				flagged[lit] = true
			}
		case *ast.CompositeLit:
			if flagged[n] {
				return true
			}
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in hot region allocates per iteration; preallocate scratch outside the loop")
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in hot region allocates per iteration; preallocate scratch outside the loop")
			}
		case *ast.BinaryExpr:
			if n.Op.String() != "+" {
				return true
			}
			tv, ok := info.Types[n]
			if !ok || tv.Value != nil { // constant-folded concatenation is free
				return true
			}
			if t, ok := tv.Type.Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
				pass.Reportf(n.Pos(), "string concatenation in hot region allocates per iteration; build strings outside the loop")
			}
		}
		return true
	})
}

// selfAppends collects append calls of the amortized-growth form
// x = append(x, ...), which reuse capacity once warm and are allowed.
func selfAppends(body ast.Node) map[*ast.CallExpr]bool {
	allowed := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
				allowed[call] = true
			}
		}
		return true
	})
	return allowed
}

// isSliceReset reports whether an append call writes into a re-sliced
// existing buffer — append(buf[:0], ...) and friends.
func isSliceReset(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	_, ok := call.Args[0].(*ast.SliceExpr)
	return ok
}

// compositeOperand unwraps &T{...}.
func compositeOperand(n *ast.UnaryExpr) (*ast.CompositeLit, bool) {
	if n.Op.String() != "&" {
		return nil, false
	}
	lit, ok := n.X.(*ast.CompositeLit)
	return lit, ok
}

// callee names the called function: builtins by bare name, package
// functions as pkg.Name; everything else (methods, closures) is "".
func callee(info *types.Info, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, ok := info.Uses[fun].(*types.Builtin); ok {
			return fun.Name
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Parent() == fn.Pkg().Scope() {
			path := fn.Pkg().Path()
			if i := strings.LastIndexByte(path, '/'); i >= 0 {
				path = path[i+1:]
			}
			return path + "." + fn.Name()
		}
	}
	return ""
}

// typeName renders a composite literal's type for the report.
func typeName(info *types.Info, lit *ast.CompositeLit) string {
	t := info.TypeOf(lit)
	if t == nil {
		return "T"
	}
	s := t.String()
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return s
}
