package hotalloc_test

import (
	"testing"

	"xbc/internal/lint/hotalloc"
	"xbc/internal/lint/linttest"
)

func TestHotalloc(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "testdata/src/a")
}
