package lint

import (
	"go/ast"
	"strings"
	"testing"
)

// callFlagger reports every function call; enough surface to observe how
// Analyze merges real findings with directive handling.
var callFlagger = &Analyzer{
	Name: "calls",
	Doc:  "test analyzer: flags every call expression",
	Run: func(pass *Pass) {
		pass.Inspect(func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				pass.Reportf(call.Pos(), "call found")
			}
			return true
		})
	},
}

// A malformed (reason-less) //xbc:ignore must surface as its own finding
// and must NOT suppress the finding on the line below it, while a
// justified directive still suppresses. This also guards against the
// prepended directive findings sharing a backing array with the real
// findings and overwriting them.
func TestAnalyzeMalformedDirective(t *testing.T) {
	pkg, err := LoadFixture("testdata/src/malformed")
	if err != nil {
		t.Fatal(err)
	}
	diags := callFlagger.Analyze(pkg)

	var directive, calls int
	for _, d := range diags {
		switch d.Analyzer {
		case "directive":
			directive++
			if !strings.Contains(d.Message, "justification") {
				t.Errorf("directive finding message = %q", d.Message)
			}
		case "calls":
			calls++
		default:
			t.Errorf("unexpected analyzer %q", d.Analyzer)
		}
	}
	if directive != 1 {
		t.Errorf("directive findings = %d, want 1", directive)
	}
	// Three calls in the fixture; the justified directive suppresses one.
	if calls != 2 {
		t.Errorf("call findings = %d, want 2 (malformed directive must not suppress; justified one must)", calls)
	}
}
