package lint

import (
	"go/ast"
	"strings"
	"testing"
)

// callFlagger reports every function call; enough surface to observe how
// Analyze merges real findings with directive handling.
var callFlagger = &Analyzer{
	Name: "calls",
	Doc:  "test analyzer: flags every call expression",
	Run: func(pass *Pass) {
		pass.Inspect(func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				pass.Reportf(call.Pos(), "call found")
			}
			return true
		})
	},
}

// A malformed (reason-less) //xbc:ignore must surface as its own finding
// and must NOT suppress the finding on the line below it, while a
// justified directive still suppresses. This also guards against the
// prepended directive findings sharing a backing array with the real
// findings and overwriting them.
func TestAnalyzeMalformedDirective(t *testing.T) {
	pkg, err := LoadFixture("testdata/src/malformed")
	if err != nil {
		t.Fatal(err)
	}
	diags := callFlagger.Analyze(pkg)

	var directive, calls int
	for _, d := range diags {
		switch d.Analyzer {
		case "directive":
			directive++
			if !strings.Contains(d.Message, "justification") {
				t.Errorf("directive finding message = %q", d.Message)
			}
		case "calls":
			calls++
		default:
			t.Errorf("unexpected analyzer %q", d.Analyzer)
		}
	}
	if directive != 1 {
		t.Errorf("directive findings = %d, want 1", directive)
	}
	// Three calls in the fixture; the justified directive suppresses one.
	if calls != 2 {
		t.Errorf("call findings = %d, want 2 (malformed directive must not suppress; justified one must)", calls)
	}
}

// A directive whose analyzer ran but which suppressed nothing is stale
// and must be reported; the directive that did suppress a finding must
// stay silent, and the suppressed finding must come back marked with its
// justification.
func TestRunAnalyzersStaleDirective(t *testing.T) {
	pkg, err := LoadFixture("testdata/src/stale")
	if err != nil {
		t.Fatal(err)
	}
	finds := RunAnalyzers(pkg, []*Analyzer{callFlagger}, []string{"calls"})

	var stale, suppressed, plain int
	for _, f := range finds {
		switch {
		case f.Analyzer == "directive":
			if !strings.Contains(f.Message, "stale") {
				t.Errorf("directive finding message = %q, want stale report", f.Message)
			}
			stale++
		case f.Suppressed:
			if f.Reason != "justified; fixture call deliberately suppressed" {
				t.Errorf("suppressed finding reason = %q", f.Reason)
			}
			suppressed++
		default:
			plain++
		}
	}
	if stale != 1 {
		t.Errorf("stale directive findings = %d, want 1", stale)
	}
	if suppressed != 1 {
		t.Errorf("suppressed findings = %d, want 1", suppressed)
	}
	if plain != 0 {
		t.Errorf("unsuppressed call findings = %d, want 0", plain)
	}
}

// A directive naming an analyzer outside the known registry is a typo
// that can never suppress anything; with a nil registry (fixture runs)
// the same directive is left alone.
func TestRunAnalyzersUnknownAnalyzer(t *testing.T) {
	pkg, err := LoadFixture("testdata/src/unknown")
	if err != nil {
		t.Fatal(err)
	}

	finds := RunAnalyzers(pkg, []*Analyzer{callFlagger}, []string{"calls"})
	var unknown int
	for _, f := range finds {
		if f.Analyzer == "directive" && strings.Contains(f.Message, "unknown analyzer") {
			unknown++
		}
	}
	if unknown != 1 {
		t.Errorf("unknown-analyzer findings = %d, want 1", unknown)
	}

	for _, f := range RunAnalyzers(pkg, []*Analyzer{callFlagger}, nil) {
		if f.Analyzer == "directive" {
			t.Errorf("nil registry must not audit analyzer names, got %q", f.Message)
		}
	}
}
