package floatcmp_test

import (
	"testing"

	"xbc/internal/lint/floatcmp"
	"xbc/internal/lint/linttest"
)

func TestFloatcmp(t *testing.T) {
	linttest.Run(t, floatcmp.Analyzer, "testdata/src/a")
}
