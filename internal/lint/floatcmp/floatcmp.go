// Package floatcmp forbids exact equality on floating-point values in the
// statistics toolkit and the metric-comparison paths: two metric pipelines
// that differ only in summation order can produce values that are equal
// for every practical purpose yet fail ==, and values that happen to
// compare equal today silently stop doing so after a reordering — the
// golden test compares bit patterns deliberately, everything else should
// compare with a tolerance.
//
// Comparison against an exact constant zero is allowed: it is the
// standard (and IEEE-754-exact) divide-by-zero guard used throughout
// stats.Ratio and the bandwidth metrics. Any other exact comparison needs
// an epsilon, a bit-pattern comparison (math.Float64bits), or a justified
// //xbc:ignore floatcmp directive.
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"xbc/internal/lint"
)

var scope = map[string]bool{
	"xbc/internal/stats":       true,
	"xbc/internal/interval":    true,
	"xbc/internal/experiments": true,
	"xbc/cmd/benchjson":        true,
}

// Analyzer is the floatcmp check.
var Analyzer = &lint.Analyzer{
	Name:  "floatcmp",
	Doc:   "forbids ==/!= on floating-point operands in stats and metric-comparison code (exact zero guards excepted)",
	Match: func(path string) bool { return scope[path] },
	Run:   run,
}

func run(pass *lint.Pass) {
	info := pass.Pkg.Info
	pass.Inspect(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if !isFloat(info.TypeOf(be.X)) && !isFloat(info.TypeOf(be.Y)) {
			return true
		}
		if isExactZero(info, be.X) || isExactZero(info, be.Y) {
			return true
		}
		pass.Reportf(be.Pos(), "exact %s on float operands; compare with a tolerance, math.Float64bits, or justify with //xbc:ignore floatcmp <reason>", be.Op)
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isExactZero reports whether expr is a compile-time constant equal to
// zero — the IEEE-754-exact guard value.
func isExactZero(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
}
