// Package a is the floatcmp fixture.
package a

import "math"

type rate float64

// Triggering: exact equality between computed floats.
func compare(a, b float64, r rate) bool {
	if a == b { // want "exact == on float operands"
		return true
	}
	if a != b+1 { // want "exact != on float operands"
		return false
	}
	if r == 0.5 { // want "exact == on float operands"
		return true
	}
	return false
}

// Non-triggering: the exact zero guard, integer comparisons, ordering
// comparisons, bit-pattern equality, and a justified suppression.
func allowed(a, b float64, n int) bool {
	if a == 0 || 0 != b {
		return false
	}
	if n == 3 {
		return true
	}
	if a < b || a >= b {
		return false
	}
	if math.Float64bits(a) == math.Float64bits(b) {
		return true
	}
	//xbc:ignore floatcmp sentinel propagated verbatim, equality is intended
	if a == math.Inf(1) {
		return true
	}
	return false
}
