// Package goroleak reports go statements that start a goroutine with no
// termination path. The check is CFG reachability over the spawned
// body: if the synthetic exit is unreachable from entry — every path
// ends in an exitless infinite loop or an empty select — nothing the
// rest of the program does (short of exiting the process) ever stops the
// goroutine, and each spawn leaks a stack for the process lifetime.
//
// Worker-loop idioms pass naturally: ranging over a channel terminates
// when the channel closes, a for-select with a done/ctx return case has
// an exit edge, a bounded loop falls out. Only bodies resolvable in the
// same package are checked (a function literal, or a go'd call to a
// same-package function or method); spawning an external function is
// trusted.
package goroleak

import (
	"go/ast"
	"go/types"

	"xbc/internal/lint"
	"xbc/internal/lint/cfg"
)

// Analyzer is the goroleak check.
var Analyzer = &lint.Analyzer{
	Name:  "goroleak",
	Doc:   "reports go statements whose goroutine body has no reachable termination: no path leaves its loops, so the goroutine can only die with the process",
	Match: func(string) bool { return true },
	Run:   run,
}

func run(pass *lint.Pass) {
	info := pass.Pkg.Info

	// Same-package function declarations, for resolving go f(...) spawns.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	pass.Inspect(func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body := spawnedBody(info, decls, g)
		if body == nil {
			return true
		}
		graph := cfg.New(body)
		if !reaches(graph.Entry, graph.Exit) {
			pass.Reportf(g.Pos(), "goroutine started here has no termination path: no path out of its loops reaches a return, so it can only die with the process (range a closable channel, add a done/ctx exit, or bound the loop)")
		}
		return true
	})
}

// spawnedBody resolves the body the go statement runs: an inline
// function literal, or a same-package function/method declaration.
func spawnedBody(info *types.Info, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	var id *ast.Ident
	switch fun := g.Call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if fd := decls[fn]; fd != nil {
		return fd.Body
	}
	return nil
}

// reaches reports whether to is reachable from from.
func reaches(from, to *cfg.Block) bool {
	seen := map[*cfg.Block]bool{from: true}
	work := []*cfg.Block{from}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if b == to {
			return true
		}
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return false
}
