// Fixture for the goroleak analyzer: goroutines with no termination
// path, and the worker idioms that must stay clean.
package a

import "context"

type W struct {
	jobs chan int
	stop chan struct{}
}

// spinLit spawns a literal that can never stop.
func spinLit() {
	go func() { // want "no termination path"
		n := 0
		for {
			n++
		}
	}()
}

// emptySelect blocks forever by construction.
func emptySelect() {
	go func() { // want "no termination path"
		select {}
	}()
}

// forSelectNoExit loops over a select none of whose cases leave.
func (w *W) forSelectNoExit() {
	go func() { // want "no termination path"
		for {
			select {
			case j := <-w.jobs:
				_ = j
			}
		}
	}()
}

// spinDecl spawns a same-package function with no exit.
func spinDecl() {
	go hotLoop() // want "no termination path"
}

func hotLoop() {
	for {
	}
}

// suppressedSpin documents an accepted process-lifetime goroutine.
func suppressedSpin() {
	//xbc:ignore goroleak fixture: process-lifetime pump, dies with the process by design
	go func() {
		for {
		}
	}()
}

// --- clean shapes ---

// worker ranges over the jobs channel: close(jobs) terminates it.
func (w *W) worker() {
	go func() {
		for j := range w.jobs {
			_ = j
		}
	}()
}

// methodWorker spawns a method whose body ranges a channel.
func (w *W) methodWorker() {
	go w.drain()
}

func (w *W) drain() {
	for j := range w.jobs {
		_ = j
	}
}

// stopable selects on a stop channel and returns.
func (w *W) stopable() {
	go func() {
		for {
			select {
			case j := <-w.jobs:
				_ = j
			case <-w.stop:
				return
			}
		}
	}()
}

// ctxLoop exits when the context is done.
func ctxLoop(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case j := <-jobs:
				_ = j
			case <-ctx.Done():
				return
			}
		}
	}()
}

// bounded loops fall out on their own.
func bounded() {
	go func() {
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
}

// breakOut leaves the infinite loop through a conditional break.
func breakOut(jobs chan int) {
	go func() {
		for {
			j, ok := <-jobs
			if !ok {
				break
			}
			_ = j
		}
	}()
}

// oneShot runs straight through: trivially terminates.
func oneShot(results chan<- int) {
	go func() {
		select {
		case results <- 1:
		default:
		}
	}()
}

// external spawns an unresolvable callee: trusted.
func external(f func()) {
	go f()
}
