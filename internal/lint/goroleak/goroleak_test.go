package goroleak_test

import (
	"testing"

	"xbc/internal/lint/goroleak"
	"xbc/internal/lint/linttest"
)

func TestGoroleak(t *testing.T) {
	linttest.Run(t, goroleak.Analyzer, "testdata/src/a")
}
