// Package unknown exercises the registry audit: the directive below
// names an analyzer that does not exist, so with a registry in hand it
// must be flagged as a typo, and without one it must be left alone.
package unknown

func g() {
	//xbc:ignore nosuchanalyzer typo that can never suppress anything
	x := 1
	_ = x
}
