// Package m exercises malformed suppression directives: a reason-less
// //xbc:ignore must be reported AND must not suppress the finding under
// it.
package m

func f() {}

func g() {
	//xbc:ignore
	f()
	f()
	//xbc:ignore calls justified reason here
	f()
}
