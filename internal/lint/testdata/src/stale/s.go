// Package stale exercises the stale-suppression audit: a directive
// whose analyzer ran but which covers no finding must itself be
// reported, while a directive that earns its keep stays silent.
package stale

func sideEffect() {}

func f() {
	//xbc:ignore calls justified; fixture call deliberately suppressed
	sideEffect()

	//xbc:ignore calls nothing on the next line triggers the analyzer
	x := 1
	_ = x
}
