// Package nondeterm is the static twin of golden_test.go: it forbids the
// constructs that make simulator output differ between bit-identical
// runs — wall-clock reads, the auto-seeded global math/rand, and map
// iteration (whose order Go randomizes per run) — in the packages that
// produce Metrics, JSON, and report output.
//
// Map iteration that is genuinely order-insensitive (a commutative integer
// reduction, or key collection followed by an explicit sort) is suppressed
// with a justified //xbc:ignore nondeterm directive at the loop.
package nondeterm

import (
	"go/ast"
	"go/types"
	"strings"

	"xbc/internal/lint"
)

// corePackages are the packages whose output must be bit-reproducible:
// the five frontends' engines, the stats toolkit, the trace layer, the
// persistent store (deterministic exports, crash-reproducible recovery),
// and the commands that render metrics and reports.
var corePackages = map[string]bool{
	"xbc/internal/xbcore":          true,
	"xbc/internal/tcache":          true,
	"xbc/internal/bbtc":            true,
	"xbc/internal/decoded":         true,
	"xbc/internal/icfe":            true,
	"xbc/internal/stats":           true,
	"xbc/internal/trace":           true,
	"xbc/internal/store":           true,
	"xbc/internal/service":         true,
	"xbc/internal/service/api":     true,
	"xbc/internal/service/jobspec": true,
	"xbc/internal/planner":         true,
	"xbc/internal/planner/grid":    true,
	"xbc/internal/cluster":         true,
	"xbc/cmd/report":               true,
	"xbc/cmd/xbcsim":               true,
	"xbc/cmd/benchjson":            true,
	"xbc/cmd/xbcd":                 true,
	"xbc/cmd/xbcctl":               true,
}

// seededConstructors are the math/rand entry points that take an explicit
// seed (or an explicitly seeded source) and therefore stay reproducible.
var seededConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Analyzer is the nondeterm check.
var Analyzer = &lint.Analyzer{
	Name:  "nondeterm",
	Doc:   "forbids time.Now, unseeded global math/rand, and map iteration in packages that feed Metrics/JSON/report output",
	Match: func(path string) bool { return corePackages[path] },
	Run:   run,
}

func run(pass *lint.Pass) {
	info := pass.Pkg.Info
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj := info.Uses[n.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" {
					pass.Reportf(n.Pos(), "time.Now makes output depend on the wall clock; thread timestamps in from main or report cycle counts")
				}
			case "math/rand", "math/rand/v2":
				// Package-level functions draw from the auto-seeded
				// global source; methods on an explicitly seeded
				// *rand.Rand resolve to the receiver type, not the
				// package scope, and pass.
				if fn.Parent() == fn.Pkg().Scope() && !seededConstructors[fn.Name()] {
					pass.Reportf(n.Pos(), "global %s.%s is auto-seeded and differs between runs; use rand.New(rand.NewSource(seed))", pathBase(fn.Pkg().Path()), fn.Name())
				}
			}
		case *ast.RangeStmt:
			tv, ok := info.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(n.Pos(), "map iteration order is randomized per run; iterate sorted keys (or justify with //xbc:ignore nondeterm <reason> if the loop is order-insensitive)")
			}
		}
		return true
	})
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
