package nondeterm_test

import (
	"testing"

	"xbc/internal/lint/linttest"
	"xbc/internal/lint/nondeterm"
)

func TestNondeterm(t *testing.T) {
	linttest.Run(t, nondeterm.Analyzer, "testdata/src/a")
}
