// Package a is the nondeterm fixture: each flagged construct carries a
// want expectation; the surrounding code shows the non-triggering
// deterministic alternatives.
package a

import (
	"math/rand"
	"sort"
	"time"
)

// Triggering: wall-clock reads.
func clock() int64 {
	t := time.Now() // want "time.Now makes output depend on the wall clock"
	return t.Unix()
}

// Non-triggering: time values that do not read the clock.
func duration() time.Duration {
	return 5 * time.Second
}

// Triggering: the auto-seeded global math/rand source.
func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want "global rand.Shuffle is auto-seeded"
	return rand.Intn(10)               // want "global rand.Intn is auto-seeded"
}

// Non-triggering: an explicitly seeded generator, including its methods.
func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Triggering: map iteration feeding a result.
func mapOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order is randomized per run"
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Non-triggering: a justified suppression on an order-insensitive loop.
func mapSum(m map[string]int) int {
	total := 0
	//xbc:ignore nondeterm commutative integer sum, order-insensitive
	for _, v := range m {
		total += v
	}
	return total
}

// Non-triggering: slice and array iteration is ordered.
func sliceOrder(xs []int, arr [4]int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	for _, v := range arr {
		total += v
	}
	return total
}
