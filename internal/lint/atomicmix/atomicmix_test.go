package atomicmix_test

import (
	"testing"

	"xbc/internal/lint/atomicmix"
	"xbc/internal/lint/linttest"
)

func TestAtomicmix(t *testing.T) {
	linttest.Run(t, atomicmix.Analyzer, "testdata/src/a")
}
