// Fixture for the atomicmix analyzer: plain accesses of atomically
// accessed variables, the mutex-covered hybrid that is accepted, and the
// typed-atomic shapes that need no analysis.
package a

import (
	"sync"
	"sync/atomic"
)

type C struct {
	mu sync.Mutex
	n  uint64
	m  uint64
}

// inc makes n an atomic target.
func (c *C) inc() {
	atomic.AddUint64(&c.n, 1)
}

// read races with inc: the atomic calls protect nothing.
func (c *C) read() uint64 {
	return c.n // want "plain access of n"
}

// readLocked holds the owner's mutex: the accepted hybrid.
func (c *C) readLocked() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// incLockedPlain writes under the owner's mutex.
func (c *C) incLockedPlain() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// lateAccess released the mutex before touching n.
func (c *C) lateAccess() uint64 {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want "plain access of n"
}

type D struct{ mu sync.Mutex }

// wrongLock holds an unrelated struct's mutex: no cover.
func wrongLock(c *C, d *D) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return c.n // want "plain access of n"
}

// loadAtomic keeps both sides atomic: clean.
func (c *C) loadAtomic() uint64 {
	return atomic.LoadUint64(&c.n)
}

// bumpPlain touches m, which nothing accesses atomically: clean.
func (c *C) bumpPlain() {
	c.m++
}

// newC names n as a composite-literal key: structure, not access.
func newC() *C {
	return &C{n: 1}
}

// initC documents a pre-publication plain write.
func initC(c *C) {
	//xbc:ignore atomicmix fixture: pre-publication init, nothing else sees c yet
	c.n = 0
}

var hits uint64

// bumpHits makes the package-level hits an atomic target.
func bumpHits() {
	atomic.AddUint64(&hits, 1)
}

// readHits races with bumpHits.
func readHits() uint64 {
	return hits // want "plain access of hits"
}

var hmu sync.Mutex

// readHitsLocked holds a package-scope mutex: accepted for package vars.
func readHitsLocked() uint64 {
	hmu.Lock()
	defer hmu.Unlock()
	return hits
}

type T struct{ flag atomic.Bool }

// Typed atomics cannot be mixed: clean by construction.
func (t *T) set()      { t.flag.Store(true) }
func (t *T) get() bool { return t.flag.Load() }
