// Package atomicmix reports variables accessed through sync/atomic in
// one place and by plain read or write in another. Mixing the two means
// the plain access races with every atomic one — the atomic calls
// protect nothing — unless the plain access holds the mutex of the
// struct that owns the field, which is the one blessed hybrid (atomic
// fast-path reads, mutex-guarded writes are NOT safe; mutex-guarded
// plain access alongside atomic access of a value only ever written
// under that mutex is a deliberate pattern the analyzer accepts rather
// than second-guesses).
//
// Identification is by types.Object: any variable (field or not) whose
// address flows into a sync/atomic function is an atomic target; every
// other identifier use of that object is a plain access. Composite
// literal keys and the atomic call arguments themselves are structure,
// not access. The typed atomics (atomic.Bool, atomic.Uint64, ...) make
// mixing impossible by construction and need no analysis.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"xbc/internal/lint"
	"xbc/internal/lint/lockset"
)

// Analyzer is the atomicmix check.
var Analyzer = &lint.Analyzer{
	Name:  "atomicmix",
	Doc:   "reports plain reads/writes of variables that are elsewhere accessed via sync/atomic, unless the owning struct's mutex is held at the plain access",
	Match: func(string) bool { return true },
	Run:   run,
}

func run(pass *lint.Pass) {
	info := pass.Pkg.Info
	fset := pass.Fset()

	// Pass 1: every object whose address is an argument to a sync/atomic
	// call, with the first such site for the report, plus the identifier
	// nodes that belong to those call arguments (exempt from pass 2).
	targets := map[*types.Var]token.Position{}
	exempt := map[*ast.Ident]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						exempt[id] = true
					}
					return true
				})
				v := addressedVar(info, arg)
				if v == nil {
					continue
				}
				if _, seen := targets[v]; !seen {
					targets[v] = fset.Position(arg.Pos())
				}
			}
			return true
		})
	}
	if len(targets) == 0 {
		return
	}

	// Composite literal keys name fields without accessing them.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			for _, el := range cl.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						exempt[id] = true
					}
				}
			}
			return true
		})
	}

	// Pass 2: walk every function with held-lock sets and flag plain
	// uses of the targets. Deduplicate per identifier (a selector visit
	// and its Sel child would otherwise double-report).
	type finding struct {
		pos token.Pos
		v   *types.Var
	}
	reported := map[*ast.Ident]bool{}
	var finds []finding
	for _, body := range functionBodies(pass.Pkg.Files) {
		res := lockset.Analyze(pass.Pkg, body)
		res.WalkNodes(func(held lockset.Set, n ast.Node) {
			id, ok := n.(*ast.Ident)
			if !ok || exempt[id] || reported[id] {
				return
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok {
				return
			}
			if _, isTarget := targets[v]; !isTarget {
				return
			}
			if heldCovers(held, v) {
				return
			}
			reported[id] = true
			finds = append(finds, finding{pos: id.Pos(), v: v})
		})
	}
	sort.Slice(finds, func(i, j int) bool { return finds[i].pos < finds[j].pos })
	for _, f := range finds {
		first := targets[f.v]
		pass.Reportf(f.pos, "plain access of %s, which is accessed atomically at %s:%d; every access must go through sync/atomic or hold the owner's mutex", f.v.Name(), first.Filename, first.Line)
	}
}

// heldCovers reports whether a held lock plausibly guards the variable:
// for a field, a lock owned by the same struct type; for a package-level
// variable, any held lock from the same scope layer (lenient: any lock).
func heldCovers(held lockset.Set, v *types.Var) bool {
	if len(held) == 0 {
		return false
	}
	if !v.IsField() {
		return true
	}
	owner := fieldOwner(v)
	if owner == "" {
		return true // unknown owner: give the held lock the benefit
	}
	for id := range held {
		if id.OwnerType() == owner {
			return true
		}
	}
	return false
}

// fieldOwner names the struct type declaring the field, by scanning the
// package scope for the named type whose underlying struct holds it.
func fieldOwner(v *types.Var) string {
	pkg := v.Pkg()
	if pkg == nil {
		return ""
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name()
			}
		}
	}
	return ""
}

// functionBodies returns every function body in the package, in source
// order: declarations first, then each literal as its own unit.
func functionBodies(files []*ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					bodies = append(bodies, n.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, n.Body)
			}
			return true
		})
	}
	return bodies
}

// isAtomicCall matches sync/atomic package-level functions
// (LoadUint64, AddInt64, CompareAndSwapPointer, ...).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// addressedVar resolves &x or &s.f arguments to the variable object.
func addressedVar(info *types.Info, arg ast.Expr) *types.Var {
	u, ok := arg.(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	switch e := u.X.(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	}
	return nil
}
