package enumexhaust_test

import (
	"testing"

	"xbc/internal/lint/enumexhaust"
	"xbc/internal/lint/linttest"
)

func TestEnumExhaust(t *testing.T) {
	linttest.Run(t, enumexhaust.Analyzer, "testdata/src/a")
}
