// Package enumexhaust keeps the simulator's enums honest: a switch over
// an enum type must either carry an explicit default clause or mention
// every constant of the enum, and every counter array indexed by an enum
// (like xbcore's abandon-reason counters) must come with a name mapping —
// a String method on the enum or a func(T) string in the indexing
// package — so the metrics report can render each slot.
//
// An "enum" is a package-level named integer type with at least two
// package-level constants of that exact type. Constants whose name marks
// them as a sentinel (num*/max* prefix or *Count suffix, any case) are
// not required in switches.
package enumexhaust

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"xbc/internal/lint"
)

var scope = map[string]bool{
	"xbc/internal/isa":      true,
	"xbc/internal/xbcore":   true,
	"xbc/internal/tcache":   true,
	"xbc/internal/bbtc":     true,
	"xbc/internal/decoded":  true,
	"xbc/internal/icfe":     true,
	"xbc/internal/trace":    true,
	"xbc/internal/frontend": true,
	"xbc/internal/stats":    true,
}

// Analyzer is the enumexhaust check.
var Analyzer = &lint.Analyzer{
	Name:  "enumexhaust",
	Doc:   "requires exhaustive (or explicitly defaulted) switches over enum types and a name mapping for every enum-indexed counter array",
	Match: func(path string) bool { return scope[path] },
	Run:   run,
}

// enumInfo describes one detected enum type.
type enumInfo struct {
	typ      *types.Named
	consts   []*types.Const // non-sentinel constants
	sentinel []*types.Const
}

func run(pass *lint.Pass) {
	info := pass.Pkg.Info
	enums := make(map[*types.Named]*enumInfo)
	namedArrays := make(map[*types.Named]bool) // enum types already reported for rule B

	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SwitchStmt:
			if n.Tag == nil {
				return true
			}
			e := enumOf(enums, info.TypeOf(n.Tag))
			if e == nil {
				return true
			}
			checkSwitch(pass, n, e)
		case *ast.IndexExpr:
			xt := info.TypeOf(n.X)
			if xt == nil {
				return true
			}
			if _, isArray := xt.Underlying().(*types.Array); !isArray {
				return true
			}
			e := enumOf(enums, info.TypeOf(n.Index))
			if e == nil || namedArrays[e.typ] {
				return true
			}
			namedArrays[e.typ] = true
			if !hasNameMapping(pass.Pkg, e.typ) {
				pass.Reportf(n.Pos(), "array indexed by enum %s has no name mapping; add a String method or a func(%s) string so reports can render each slot",
					e.typ.Obj().Name(), e.typ.Obj().Name())
			}
		}
		return true
	})
}

// checkSwitch verifies one switch statement over the enum e.
func checkSwitch(pass *lint.Pass, sw *ast.SwitchStmt, e *enumInfo) {
	covered := make(map[types.Object]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the author decided the fallback
		}
		for _, expr := range cc.List {
			if obj := constObj(pass.Pkg.Info, expr); obj != nil {
				covered[obj] = true
			}
		}
	}
	// A value counts as covered when any constant sharing it is cased
	// (aliased constants name the same slot).
	var missing []string
	for _, c := range e.consts {
		if covered[c] {
			continue
		}
		aliased := false
		for obj := range covered {
			if co, ok := obj.(*types.Const); ok && co.Val().String() == c.Val().String() {
				aliased = true
				break
			}
		}
		if !aliased {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(sw.Pos(), "switch over %s is not exhaustive: missing %s; add the cases or an explicit default clause",
			e.typ.Obj().Name(), strings.Join(missing, ", "))
	}
}

// enumOf classifies t, caching the answer. Nil means "not an enum".
func enumOf(cache map[*types.Named]*enumInfo, t types.Type) *enumInfo {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if e, ok := cache[named]; ok {
		return e
	}
	cache[named] = nil // default; overwritten below when it qualifies
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	e := &enumInfo{typ: named}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if isSentinelName(c.Name()) {
			e.sentinel = append(e.sentinel, c)
		} else {
			e.consts = append(e.consts, c)
		}
	}
	if len(e.consts) < 2 {
		return nil
	}
	cache[named] = e
	return e
}

// isSentinelName reports whether a constant name marks a count sentinel
// rather than a real enum value.
func isSentinelName(name string) bool {
	l := strings.ToLower(name)
	return strings.HasPrefix(l, "num") || strings.HasPrefix(l, "max") || strings.HasSuffix(l, "count")
}

// constObj resolves a case expression to the constant it names, through
// either a bare identifier or a pkg.Name selector.
func constObj(info *types.Info, expr ast.Expr) types.Object {
	switch expr := expr.(type) {
	case *ast.Ident:
		if c, ok := info.Uses[expr].(*types.Const); ok {
			return c
		}
	case *ast.SelectorExpr:
		if c, ok := info.Uses[expr.Sel].(*types.Const); ok {
			return c
		}
	}
	return nil
}

// hasNameMapping reports whether enum values of named can be rendered:
// a String() string method on the type, or a func(T) string declared in
// the current package or the enum's package.
func hasNameMapping(pkg *lint.Package, named *types.Named) bool {
	if m, _, _ := types.LookupFieldOrMethod(named, false, named.Obj().Pkg(), "String"); m != nil {
		if sig, ok := m.Type().(*types.Signature); ok && isStringResult(sig) && sig.Params().Len() == 0 {
			return true
		}
	}
	for _, s := range []*types.Scope{pkg.Types.Scope(), named.Obj().Pkg().Scope()} {
		for _, name := range s.Names() {
			fn, ok := s.Lookup(name).(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if sig.Params().Len() == 1 && types.Identical(sig.Params().At(0).Type(), named) && isStringResult(sig) {
				return true
			}
		}
	}
	return false
}

func isStringResult(sig *types.Signature) bool {
	if sig.Results().Len() != 1 {
		return false
	}
	basic, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
