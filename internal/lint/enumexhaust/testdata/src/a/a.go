// Package a is the enumexhaust fixture: color is an enum with a String
// mapping, reason is an enum-indexed counter without one.
package a

type color uint8

const (
	red color = iota
	green
	blue
	numColors
)

// String names each color; with it, color-indexed arrays are renderable.
func (c color) String() string {
	switch c {
	case red:
		return "red"
	case green:
		return "green"
	case blue:
		return "blue"
	default:
		return "unknown"
	}
}

// Triggering: no default clause and blue is missing. The numColors
// sentinel is not required.
func describe(c color) int {
	switch c { // want "switch over color is not exhaustive: missing blue"
	case red:
		return 0
	case green:
		return 1
	}
	return -1
}

// Non-triggering: an explicit default documents the fallback.
func short(c color) bool {
	switch c {
	case red:
		return true
	default:
		return false
	}
}

// Non-triggering: every value is cased.
func full(c color) int {
	switch c {
	case red, green:
		return 0
	case blue:
		return 1
	}
	return -1
}

// Non-triggering: color-indexed counters have the String mapping above.
var colorHits [numColors]uint64

func countColor(c color) {
	colorHits[c]++
}

// reason is an enum used to index counters but with no name mapping.
type reason int

const (
	reasonMiss reason = iota
	reasonStale
	reasonConflict
	numReasons
)

var reasonHits [numReasons]uint64

func countReason(r reason) {
	reasonHits[r]++ // want "array indexed by enum reason has no name mapping"
}

// notEnum has a single constant: not an enum, switches over it are free.
type notEnum int

const onlyValue notEnum = 0

func freeSwitch(n notEnum) bool {
	switch n {
	case onlyValue:
		return true
	}
	return false
}
