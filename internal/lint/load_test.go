package lint

import "testing"

// Two packages that both depend on internal/isa must share one
// type-check of it: the loader memoizes by import path, so the shared
// dependency is parsed and checked exactly once per loader.
func TestLoadOnce(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, pattern := range []string{"./internal/xbcore", "./internal/frontend"} {
		if _, err := l.LoadPattern(pattern); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.TypeChecks("xbc/internal/isa"); n != 1 {
		t.Errorf("internal/isa type-checked %d times, want 1 (loader memoization regressed)", n)
	}
}

// Fixture loads are memoized process-wide: asking for the same dir twice
// must hand back the identical package, not re-type-check it.
func TestLoadFixtureMemoized(t *testing.T) {
	a, err := LoadFixture("testdata/src/malformed")
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadFixture("testdata/src/malformed")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("LoadFixture returned distinct packages for the same dir")
	}
}

// Linting the whole tree must type-check every package once. The
// benchmark doubles as a regression gate: if the loader cache breaks,
// internal/isa (imported by most of the tree) gets re-checked per
// dependent and the assertion fires on the first iteration.
func BenchmarkLoadTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l, err := NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := l.LoadPattern("./..."); err != nil {
			b.Fatal(err)
		}
		if n := l.TypeChecks("xbc/internal/isa"); n != 1 {
			b.Fatalf("internal/isa type-checked %d times in one sweep, want 1", n)
		}
	}
}
