package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"xbc/internal/lint/cfg"
)

func buildGraph(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cfg.New(f.Decls[0].(*ast.FuncDecl).Body)
}

// setOf is a tiny immutable string-set fact for tests.
type setOf map[string]bool

func (s setOf) with(k string) setOf {
	n := make(setOf, len(s)+1)
	for k2 := range s {
		n[k2] = true
	}
	n[k] = true
	return n
}

func union(a, b setOf) setOf {
	n := make(setOf, len(a)+len(b))
	for k := range a {
		n[k] = true
	}
	for k := range b {
		n[k] = true
	}
	return n
}

func intersect(a, b setOf) setOf {
	n := setOf{}
	for k := range a {
		if b[k] {
			n[k] = true
		}
	}
	return n
}

func equal(a, b setOf) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// assignedNames gathers the variables a block's nodes assign with :=.
func assignedNames(b *cfg.Block, in setOf) setOf {
	out := in
	for _, n := range b.Nodes {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			continue
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				out = out.with(id.Name)
			}
		}
	}
	return out
}

// TestMustAnalysisIntersectsBranches: a variable defined on only one arm
// of an if is NOT definitely-assigned at the join under intersection.
func TestMustAnalysisIntersectsBranches(t *testing.T) {
	g := buildGraph(t, "a := 1\nif a > 0 { b := 2; _ = b }\n_ = a")
	res := Forward(g, Problem[setOf]{
		Entry:    setOf{},
		Transfer: assignedNames,
		Join:     intersect,
		Equal:    equal,
	})
	exitIn, ok := res.In[g.Exit]
	if !ok {
		t.Fatal("no fact at exit")
	}
	if !exitIn["a"] {
		t.Errorf("a assigned on all paths, missing from exit fact %v", exitIn)
	}
	if exitIn["b"] {
		t.Errorf("b assigned on one arm only, must not be in exit fact %v", exitIn)
	}
}

// TestMayAnalysisUnionsBranches: under union the one-arm definition IS
// visible at exit.
func TestMayAnalysisUnionsBranches(t *testing.T) {
	g := buildGraph(t, "a := 1\nif a > 0 { b := 2; _ = b }\n_ = a")
	res := Forward(g, Problem[setOf]{
		Entry:    setOf{},
		Transfer: assignedNames,
		Join:     union,
		Equal:    equal,
	})
	exitIn := res.In[g.Exit]
	if !exitIn["a"] || !exitIn["b"] {
		t.Errorf("union fact at exit should hold a and b, got %v", exitIn)
	}
}

// TestLoopFixpoint: facts flowing around a loop converge, and a
// definition inside the loop body reaches the loop head via the back
// edge under union.
func TestLoopFixpoint(t *testing.T) {
	g := buildGraph(t, "a := 1\nfor a < 10 { b := a; _ = b; a++ }\n_ = a")
	res := Forward(g, Problem[setOf]{
		Entry:    setOf{},
		Transfer: assignedNames,
		Join:     union,
		Equal:    equal,
	})
	var head *cfg.Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no loop head:\n%s", g)
	}
	if !res.In[head]["b"] {
		t.Errorf("loop-body definition must reach the head via the back edge, got %v", res.In[head])
	}
}

// TestUnreachableBlocksSkipped: statements after return get no facts.
func TestUnreachableBlocksSkipped(t *testing.T) {
	g := buildGraph(t, "return\na := 1\n_ = a")
	res := Forward(g, Problem[setOf]{
		Entry:    setOf{},
		Transfer: assignedNames,
		Join:     union,
		Equal:    equal,
	})
	for _, b := range g.Blocks {
		if len(b.Nodes) == 0 {
			continue
		}
		if _, isRet := b.Nodes[0].(*ast.ReturnStmt); isRet {
			continue
		}
		if _, ok := res.In[b]; ok {
			t.Errorf("unreachable block b%d has a fact", b.Index)
		}
	}
}
