// Package dataflow runs forward dataflow problems over a cfg.Graph: a
// worklist fixpoint with a caller-supplied transfer function and lattice
// join. The engine is generic over the fact type; the only contract is
// that Join and Transfer are monotone and treat facts as immutable (a
// transfer must not mutate its input — copy, then change).
//
// Both may-analyses (join = union, facts grow) and must-analyses
// (join = intersection, facts shrink) converge here: facts flow into a
// successor by joining the predecessor's out-fact into the successor's
// accumulated in-fact, and re-running whenever it changes.
package dataflow

import "xbc/internal/lint/cfg"

// Problem defines a forward dataflow problem.
type Problem[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Transfer computes the out-fact of a block from its in-fact. It is
	// called once per visit; it must not mutate in.
	Transfer func(b *cfg.Block, in F) F
	// Join combines facts arriving on two edges.
	Join func(a, b F) F
	// Equal reports whether two facts carry the same information; the
	// fixpoint stops refining a block when its in-fact stops changing.
	Equal func(a, b F) bool
}

// Result holds the per-block facts of a converged run. Blocks
// unreachable from entry are absent from both maps.
type Result[F any] struct {
	In  map[*cfg.Block]F // fact on entry to the block
	Out map[*cfg.Block]F // fact after the block's transfer
}

// Forward runs the problem to fixpoint and returns per-block facts.
func Forward[F any](g *cfg.Graph, p Problem[F]) Result[F] {
	res := Result[F]{
		In:  make(map[*cfg.Block]F, len(g.Blocks)),
		Out: make(map[*cfg.Block]F, len(g.Blocks)),
	}
	res.In[g.Entry] = p.Entry

	inQueue := make(map[*cfg.Block]bool, len(g.Blocks))
	queue := []*cfg.Block{g.Entry}
	inQueue[g.Entry] = true

	// The lattice is finite in practice (facts derived from a finite
	// function body) and Transfer/Join are monotone, so the fixpoint
	// terminates; the cap is a backstop against a non-monotone client.
	budget := (len(g.Blocks) + 1) * 64
	for len(queue) > 0 && budget > 0 {
		budget--
		b := queue[0]
		queue = queue[1:]
		inQueue[b] = false

		out := p.Transfer(b, res.In[b])
		res.Out[b] = out
		for _, s := range b.Succs {
			prev, seen := res.In[s]
			next := out
			if seen {
				next = p.Join(prev, out)
				if p.Equal(prev, next) {
					continue
				}
			}
			res.In[s] = next
			if !inQueue[s] {
				inQueue[s] = true
				queue = append(queue, s)
			}
		}
	}
	return res
}
