// Package a is the errdrop fixture.
package a

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func mayFail() error                { return nil }
func open() (*os.File, error)       { return nil, nil }
func twoResults() (int, error)      { return 0, nil }
func noError() int                  { return 0 }
func cleanup()                      {}
func value() (int, bool)            { return 0, true }

// Triggering forms.
func dropped(f *os.File) {
	mayFail()         // want "call to mayFail discards its error"
	defer f.Close()   // want "deferred call to f.Close discards its error"
	go mayFail()      // want "spawned call to mayFail discards its error"
	_ = mayFail()     // want "error value assigned to _"
	n, _ := twoResults() // want "error result of twoResults assigned to _"
	_ = n
	v, _ := strconv.Atoi("7") // want "error result of strconv.Atoi assigned to _"
	_ = v
}

// Non-triggering forms: handled errors, error-free calls, the fmt print
// family, never-failing writers, and justified drops.
func handled(f *os.File) error {
	if err := mayFail(); err != nil {
		return err
	}
	noError()
	cleanup()
	_, ok := value() // second result is bool, not error
	_ = ok
	fmt.Println("status")
	fmt.Fprintln(os.Stderr, "diagnostic")
	fmt.Fprintf(os.Stdout, "%d rows\n", 2)
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "%d", 1)
	var buf bytes.Buffer
	buf.WriteByte('x')
	//xbc:ignore errdrop read-only file, close cannot lose data
	f.Close()
	return nil
}
