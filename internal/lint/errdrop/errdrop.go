// Package errdrop rejects silently discarded errors in the command-line
// tools and the experiment runner — the bug class PR 1 fixed by hand
// (swallowed workload.ByName errors, unexamined Close results on journal
// files). A call whose error result is dropped on the floor, whether as a
// bare statement, a deferred call, or an assignment to _, is a finding.
//
// fmt's Print family and the never-failing writers (strings.Builder,
// bytes.Buffer) are exempt, matching the convention of classic errcheck.
// Deliberate drops (a read-only file's Close, a best-effort cleanup on an
// error path) are suppressed with a justified //xbc:ignore errdrop
// directive.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"xbc/internal/lint"
)

// Analyzer is the errdrop check.
var Analyzer = &lint.Analyzer{
	Name: "errdrop",
	Doc:  "rejects discarded error results in cmd/, internal/runner, internal/planner, internal/cluster, internal/service, and internal/store",
	Match: func(path string) bool {
		return strings.HasPrefix(path, "xbc/cmd/") ||
			strings.HasPrefix(path, "xbc/internal/service") ||
			strings.HasPrefix(path, "xbc/internal/store") ||
			strings.HasPrefix(path, "xbc/internal/planner") ||
			strings.HasPrefix(path, "xbc/internal/cluster") ||
			path == "xbc/internal/runner"
	},
	Run: run,
}

func run(pass *lint.Pass) {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				checkCall(pass, call, "")
			}
		case *ast.DeferStmt:
			checkCall(pass, n.Call, "deferred ")
		case *ast.GoStmt:
			checkCall(pass, n.Call, "spawned ")
		case *ast.AssignStmt:
			checkAssign(pass, n)
		}
		return true
	})
}

// checkCall flags a statement-position call that returns an error.
func checkCall(pass *lint.Pass, call *ast.CallExpr, kind string) {
	info := pass.Pkg.Info
	t := info.TypeOf(call)
	if t == nil || !resultHasError(t) || exempt(info, call) {
		return
	}
	pass.Reportf(call.Pos(), "%scall to %s discards its error; handle it or justify with //xbc:ignore errdrop <reason>", kind, calleeName(info, call))
}

// checkAssign flags error results assigned to the blank identifier.
func checkAssign(pass *lint.Pass, as *ast.AssignStmt) {
	info := pass.Pkg.Info
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Tuple form: a, _ := f()
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || exempt(info, call) {
			return
		}
		tuple, ok := info.TypeOf(call).(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && i < tuple.Len() && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result of %s assigned to _; handle it or justify with //xbc:ignore errdrop <reason>", calleeName(info, call))
			}
		}
		return
	}
	for i := range as.Lhs {
		if !isBlank(as.Lhs[i]) || i >= len(as.Rhs) {
			continue
		}
		t := info.TypeOf(as.Rhs[i])
		if t == nil || !isErrorType(t) {
			continue
		}
		if call, ok := as.Rhs[i].(*ast.CallExpr); ok && exempt(info, call) {
			continue
		}
		pass.Reportf(as.Lhs[i].Pos(), "error value assigned to _; handle it or justify with //xbc:ignore errdrop <reason>")
	}
}

// isBlank reports whether an expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// resultHasError reports whether a call result type includes error.
func resultHasError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// exempt reports whether the callee belongs to the never-fail allowlist.
func exempt(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" && strings.HasPrefix(fn.Name(), "Print") {
		return true
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
		// Fprint to the never-failing in-memory writers, or diagnostics to
		// the process's standard streams (a failed write to a closed stderr
		// has no one left to tell), only.
		if len(call.Args) > 0 {
			if t := info.TypeOf(call.Args[0]); t != nil && neverFailWriter(t) {
				return true
			}
			if isStdStream(info, call.Args[0]) {
				return true
			}
		}
		return false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil && neverFailWriter(recv.Type()) {
		return true
	}
	return false
}

// isStdStream reports whether the expression names os.Stdout or
// os.Stderr.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return false
	}
	return v.Name() == "Stderr" || v.Name() == "Stdout"
}

// neverFailWriter recognizes the stdlib writers documented to never
// return a non-nil error.
func neverFailWriter(t types.Type) bool {
	s := strings.TrimPrefix(t.String(), "*")
	return s == "strings.Builder" || s == "bytes.Buffer"
}

// calleeName renders the called expression for the report.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return types.ExprString(fun)
	default:
		return "function"
	}
}
