package errdrop_test

import (
	"testing"

	"xbc/internal/lint/errdrop"
	"xbc/internal/lint/linttest"
)

func TestErrdrop(t *testing.T) {
	linttest.Run(t, errdrop.Analyzer, "testdata/src/a")
}
