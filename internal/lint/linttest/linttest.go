// Package linttest runs lint analyzers over fixture packages, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture files
// carry trailing comments of the form
//
//	badCall() // want "regexp matching the message"
//
// and the harness fails the test when an expectation goes unmatched or an
// unexpected finding appears. Several expectations may sit on one line
// ( // want "a" "b" ), and lines without a want comment must stay clean,
// which is how non-triggering fixtures are expressed.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"xbc/internal/lint"
)

// wantRe pulls the quoted expectations out of a // want comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(".*)$`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run analyzes the fixture package in dir and checks the findings against
// the // want comments. The analyzer's Match filter is bypassed, exactly
// like analysistest.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	pkg, err := lint.LoadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)
	diags := a.Analyze(pkg)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched expectation covering d, returning
// whether one existed.
func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants parses every // want comment of the fixture package.
func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitQuoted(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of double-quoted strings ("a" "b" ...).
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern at %q", s)
		}
		out = append(out, strings.ReplaceAll(s[1:end], `\"`, `"`))
		s = strings.TrimSpace(s[end+1:])
	}
	return out, nil
}
