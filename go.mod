module xbc

go 1.22
