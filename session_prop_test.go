package xbc_test

import (
	"reflect"
	"testing"

	"xbc"
	"xbc/internal/frontend"
	"xbc/internal/snapshot"
)

// The session restore property: running a frontend to completion in one
// go and running it with snapshot round-trips in the middle must produce
// bit-identical metrics. This is what makes warm-state snapshots safe to
// substitute for re-simulated warmup: a restored session IS the session
// that was saved, down to the last LRU stamp and history bit.
func TestSessionRestoreContinueBitIdentical(t *testing.T) {
	w, ok := xbc.WorkloadByName("gcc")
	if !ok {
		t.Fatal("unknown workload gcc")
	}
	s, err := xbc.Generate(w, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	recs := s.Records()
	for fn, mk := range goldenModels() {
		fn, mk := fn, mk
		t.Run(fn, func(t *testing.T) {
			fe, ok := mk().(frontend.SessionFrontend)
			if !ok {
				t.Fatalf("%s does not implement SessionFrontend", fn)
			}
			ref := frontend.RunSession(fe.NewSession(), recs)

			// Two snapshot hops: save at ~1/3 and ~2/3, each time sealing
			// the payload into a blob and reopening it (the exact bytes a
			// snapshot store round-trip sees), restoring into a fresh
			// session from the same frontend.
			ses := fe.NewSession()
			for _, cut := range []int{len(recs) / 3, 2 * len(recs) / 3} {
				ses.StepTo(recs, cut)
				var sw snapshot.Writer
				ses.SaveState(&sw)
				payload, err := snapshot.Open(snapshot.Seal(sw.Bytes()))
				if err != nil {
					t.Fatalf("reopen sealed snapshot: %v", err)
				}
				restored := fe.NewSession()
				if err := restored.LoadState(snapshot.NewReader(payload)); err != nil {
					t.Fatalf("restore at %d: %v", cut, err)
				}
				if restored.Pos() != ses.Pos() {
					t.Fatalf("restore at %d: pos %d, saved %d", cut, restored.Pos(), ses.Pos())
				}
				ses = restored
			}
			ses.StepTo(recs, len(recs))
			got := ses.Finish()

			if !reflect.DeepEqual(metricsToGolden(ref), metricsToGolden(got)) {
				t.Errorf("split run diverged from uninterrupted run\nref: %+v\ngot: %+v",
					metricsToGolden(ref), metricsToGolden(got))
			}
		})
	}
}

// A truncated or bit-flipped snapshot payload must fail cleanly in
// LoadState — never panic, never silently succeed with torn state. The
// fuzz targets in internal/snapshot cover the envelope; this covers the
// hardest decoder (the XBC core's pool cross-references).
func TestSessionLoadStateCorruptPayload(t *testing.T) {
	w, _ := xbc.WorkloadByName("gcc")
	s, err := xbc.Generate(w, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	recs := s.Records()
	for fn, mk := range goldenModels() {
		fn, mk := fn, mk
		t.Run(fn, func(t *testing.T) {
			fe := mk().(frontend.SessionFrontend)
			ses := fe.NewSession()
			ses.StepTo(recs, len(recs)/2)
			var sw snapshot.Writer
			ses.SaveState(&sw)
			payload := sw.Bytes()

			// Truncations at a spread of offsets.
			for cut := 0; cut < len(payload); cut += 1 + len(payload)/97 {
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("truncation at %d panicked: %v", cut, r)
						}
					}()
					_ = fe.NewSession().LoadState(snapshot.NewReader(payload[:cut]))
				}()
			}
			// Single-byte corruptions at a spread of offsets.
			for off := 0; off < len(payload); off += 1 + len(payload)/211 {
				mut := append([]byte(nil), payload...)
				mut[off] ^= 0x41
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("bit flip at %d panicked: %v", off, r)
						}
					}()
					_ = fe.NewSession().LoadState(snapshot.NewReader(mut))
				}()
			}
		})
	}
}
