package xbc_test

import (
	"bytes"
	"testing"

	"xbc"
)

// TestQuickstart exercises the README's quickstart flow end to end.
func TestQuickstart(t *testing.T) {
	w, ok := xbc.WorkloadByName("gcc")
	if !ok {
		t.Fatal("gcc workload missing")
	}
	stream, err := xbc.Generate(w, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	fe := xbc.NewXBCFrontend(32 * 1024)
	m := fe.Run(stream)
	if m.Uops != stream.Uops() {
		t.Fatalf("uops consumed %d != stream %d", m.Uops, stream.Uops())
	}
	if m.UopMissRate() < 0 || m.UopMissRate() > 100 {
		t.Fatalf("miss rate %v", m.UopMissRate())
	}
	if m.Bandwidth() <= 0 || m.Bandwidth() > 8 {
		t.Fatalf("bandwidth %v", m.Bandwidth())
	}
}

func TestAllFrontendConstructors(t *testing.T) {
	w, _ := xbc.WorkloadByName("doom")
	stream, err := xbc.Generate(w, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	frontends := []xbc.Frontend{
		xbc.NewICFrontend(),
		xbc.NewDecodedFrontend(16 * 1024),
		xbc.NewTraceCacheFrontend(16 * 1024),
		xbc.NewBBTCFrontend(16 * 1024),
		xbc.NewXBCFrontend(16 * 1024),
		xbc.NewXBCFrontendWith(xbc.DefaultXBCConfig(16*1024), xbc.DefaultFrontendConfig()),
		xbc.NewTraceCacheFrontendWith(xbc.DefaultTCConfig(16*1024), xbc.DefaultFrontendConfig()),
	}
	names := map[string]bool{}
	for _, fe := range frontends {
		stream.Reset()
		m := fe.Run(stream)
		if m.Uops != stream.Uops() {
			t.Errorf("%s: consumed %d of %d uops", fe.Name(), m.Uops, stream.Uops())
		}
		names[fe.Name()] = true
	}
	for _, want := range []string{"ic", "decoded", "tc", "bbtc", "xbc"} {
		if !names[want] {
			t.Errorf("frontend %q missing", want)
		}
	}
}

func TestTraceRoundTripThroughFacade(t *testing.T) {
	w, _ := xbc.WorkloadByName("word")
	s, err := xbc.Generate(w, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := xbc.WriteTrace(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := xbc.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip lost records: %d vs %d", got.Len(), s.Len())
	}
}

func TestCustomSpec(t *testing.T) {
	spec := xbc.DefaultProgramSpec("custom", 99)
	spec.Functions = 30
	s, err := xbc.GenerateSpec(spec, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	bias := xbc.MeasureBias(s)
	h := xbc.SegmentLengths(s, xbc.XBPromoted, bias)
	if h.Total() == 0 {
		t.Fatal("segmentation empty")
	}
}

func TestWorkloadList(t *testing.T) {
	if len(xbc.Workloads()) != 21 || len(xbc.WorkloadNames()) != 21 {
		t.Fatal("workload list wrong")
	}
}

func TestExperimentFacadeSmoke(t *testing.T) {
	o := xbc.DefaultExperimentOptions()
	o.UopsPerTrace = 50_000
	w1, _ := xbc.WorkloadByName("li")
	o.Workloads = []xbc.Workload{w1}
	o.Sizes = []int{4 * 1024, 16 * 1024}
	r, err := xbc.Figure9(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.AvgXBC) != 2 {
		t.Fatalf("points = %d", len(r.AvgXBC))
	}
}

func TestMultiPortedICFacade(t *testing.T) {
	w, _ := xbc.WorkloadByName("hexen")
	s, err := xbc.Generate(w, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	fe := xbc.NewMultiPortedICFrontend(2)
	m := fe.Run(s)
	if m.Uops != s.Uops() {
		t.Fatal("conservation broken")
	}
	if fe.Name() != "ic:2port" {
		t.Fatalf("name %q", fe.Name())
	}
}

func TestPhasesFacade(t *testing.T) {
	w, _ := xbc.WorkloadByName("go")
	s, err := xbc.Generate(w, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	m := xbc.NewXBCFrontend(16 * 1024).Run(s)
	p := m.Phases()
	sum := p.SteadyPct + p.TransitionPct + p.StallPct
	if sum < 99 || sum > 101 {
		t.Fatalf("phases sum %.2f", sum)
	}
}
