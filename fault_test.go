package xbc_test

import (
	"fmt"
	"testing"

	"xbc"
)

// TestFaultMatrix drives every frontend model over every fault-injected
// stream variant through RunSafe. The acceptance bar is simple: no fault
// may escape as a panic. A model may return an error (the checked XBC
// reports invariant violations, and hostile streams can be rejected) or
// degraded metrics, but the process must survive all of it.
func TestFaultMatrix(t *testing.T) {
	w, ok := xbc.WorkloadByName("gcc")
	if !ok {
		t.Fatal("gcc workload missing")
	}
	base, err := xbc.Generate(w, 150_000)
	if err != nil {
		t.Fatal(err)
	}

	faults := []struct {
		name string
		make func() *xbc.Stream
	}{
		{"truncated-1rec", func() *xbc.Stream { return xbc.TruncateStream(base, 1) }},
		{"truncated-half", func() *xbc.Stream { return xbc.TruncateStream(base, base.Len()/2) }},
		{"bitflip-1pct", func() *xbc.Stream { return xbc.BitFlipStream(base, 42, 0.01) }},
		{"bitflip-20pct", func() *xbc.Stream { return xbc.BitFlipStream(base, 7, 0.20) }},
		{"discontinuous-7", func() *xbc.Stream { return xbc.DiscontinuousStream(base, 7) }},
		{"discontinuous-2", func() *xbc.Stream { return xbc.DiscontinuousStream(base, 2) }},
	}
	frontends := []struct {
		name string
		make func() xbc.Frontend
	}{
		{"ic", xbc.NewICFrontend},
		{"decoded", func() xbc.Frontend { return xbc.NewDecodedFrontend(8 * 1024) }},
		{"tc", func() xbc.Frontend { return xbc.NewTraceCacheFrontend(8 * 1024) }},
		{"bbtc", func() xbc.Frontend { return xbc.NewBBTCFrontend(8 * 1024) }},
		{"xbc", func() xbc.Frontend { return xbc.NewXBCFrontend(8 * 1024) }},
		{"xbc-checked", func() xbc.Frontend { return xbc.NewCheckedXBCFrontend(8 * 1024) }},
	}

	for _, fault := range faults {
		for _, fe := range frontends {
			t.Run(fmt.Sprintf("%s/%s", fault.name, fe.name), func(t *testing.T) {
				s := fault.make()
				s.Reset()
				// RunSafe must contain the damage: an error is acceptable,
				// a panic escaping to this goroutine is not (the test
				// binary would crash, which is itself the failure signal).
				m, err := xbc.RunSafe(fe.make(), s)
				if err != nil {
					t.Logf("contained: %v", err)
					return
				}
				if m.Uops > 0 && m.Bandwidth() < 0 {
					t.Errorf("negative bandwidth from faulted stream: %v", m.Bandwidth())
				}
			})
		}
	}
}

// TestCheckedXBCCleanOnHealthyStream pins the other side of the checker
// contract at the facade level: a healthy stream must run with zero
// violations and metrics identical to the unchecked frontend.
func TestCheckedXBCCleanOnHealthyStream(t *testing.T) {
	w, ok := xbc.WorkloadByName("doom")
	if !ok {
		t.Fatal("doom workload missing")
	}
	s, err := xbc.Generate(w, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	checked, err := xbc.RunSafe(xbc.NewCheckedXBCFrontend(8*1024), s)
	if err != nil {
		t.Fatalf("checker flagged a healthy stream: %v", err)
	}
	s.Reset()
	plain := xbc.NewXBCFrontend(8 * 1024).Run(s)
	if checked.UopMissRate() != plain.UopMissRate() || checked.Bandwidth() != plain.Bandwidth() {
		t.Fatalf("checking changed the simulation: %.4f/%.4f vs %.4f/%.4f",
			checked.UopMissRate(), checked.Bandwidth(), plain.UopMissRate(), plain.Bandwidth())
	}
}
