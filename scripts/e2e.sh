#!/usr/bin/env sh
# End-to-end smoke of the serving stack: build xbcd and xbcctl, start
# the daemon on a random port with a persistent store, prove a served
# job is bit-identical to a direct local run (xbcctl selfcheck, which
# also asserts the second submission is a cache hit), push a little
# concurrent load through it, check the Prometheus counters — then the
# crash-safety phase: SIGKILL the daemon (no drain, no flush beyond the
# write-behind already landed), restart it on the same store, and
# require every previously computed job to come back as a store hit
# with bit-identical metrics and zero re-simulations. Finally SIGTERM
# and require a clean drain within a bounded time. Used by `make e2e`
# and the CI e2e job.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
XBCD_PID=
CL_PIDS=
trap 'status=$?
  [ -n "$XBCD_PID" ] && kill -9 "$XBCD_PID" 2>/dev/null || true
  for p in $CL_PIDS; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$WORK"
  exit $status' EXIT INT TERM

echo "e2e: building xbcd and xbcctl"
$GO build -o "$WORK/xbcd" ./cmd/xbcd
$GO build -o "$WORK/xbcctl" ./cmd/xbcctl

# start_xbcd <addr-file> <log-file> [extra flags...]: launches the daemon
# and waits (max ~5s) for it to write its bound address.
start_xbcd() {
  addr_file=$1; log_file=$2; shift 2
  "$WORK/xbcd" -addr 127.0.0.1:0 -addr-file "$addr_file" \
    -store "$WORK/store" "$@" >"$log_file" 2>&1 &
  XBCD_PID=$!
  i=0
  while [ ! -s "$addr_file" ]; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
      echo "e2e: xbcd never wrote its address; log:" >&2
      cat "$log_file" >&2
      exit 1
    fi
    kill -0 "$XBCD_PID" 2>/dev/null || {
      echo "e2e: xbcd exited early; log:" >&2
      cat "$log_file" >&2
      exit 1
    }
    sleep 0.1
  done
  ADDR="http://$(cat "$addr_file")"
}

start_xbcd "$WORK/addr" "$WORK/xbcd.log" -drain-journal "$WORK/drain.json"
echo "e2e: xbcd (pid $XBCD_PID) at $ADDR"

echo "e2e: selfcheck — served metrics must equal a direct local run"
"$WORK/xbcctl" selfcheck -addr "$ADDR" -fe xbc -trace gcc -uops 200000 -core default

echo "e2e: loadgen — 8 concurrent submitters"
"$WORK/xbcctl" loadgen -addr "$ADDR" -conc 8 -n 24 -uops 20000

echo "e2e: loadgen — sampled fidelity rung"
"$WORK/xbcctl" loadgen -addr "$ADDR" -conc 4 -n 12 -uops 120000 -fidelity sampled

echo "e2e: sweep — a duplicated grid must dedup and reuse loadgen's results"
SWEEP=$("$WORK/xbcctl" sweep -addr "$ADDR" -fe xbc \
  -traces straightline,loopnest,callheavy,straightline,loopnest,callheavy \
  -budgets 8192 -uops 20000 -wait)
echo "$SWEEP"
echo "$SWEEP" | grep -q 'planned=6 deduped=3 cache_hit=3 store_hit=0 coalesced=0 simulated=0' || {
  echo "e2e: sweep plan did not dedup and reuse as expected" >&2
  exit 1
}

echo "e2e: metrics sanity"
METRICS=$(curl -fsS "$ADDR/metrics")
echo "$METRICS" | grep -q '^xbcd_cache_hits_total [1-9]' || {
  echo "e2e: expected cache hits in /metrics:" >&2
  echo "$METRICS" >&2
  exit 1
}
echo "$METRICS" | grep -q 'xbcd_jobs_total{outcome="done"}' || {
  echo "e2e: expected completed jobs in /metrics:" >&2
  echo "$METRICS" >&2
  exit 1
}
# The selfcheck's fidelity phase ran gcc at two lengths; both capture warm
# state at the same 100k-uop point, so the second full run must have
# restored the first one's snapshot.
echo "$METRICS" | grep -q '^xbcd_snapshot_hits_total [1-9]' || {
  echo "e2e: expected a warm-state snapshot hit in /metrics:" >&2
  echo "$METRICS" >&2
  exit 1
}
echo "$METRICS" | grep -q 'xbcd_jobs_fidelity_total{fidelity="sampled"}' || {
  echo "e2e: expected sampled-fidelity completions in /metrics:" >&2
  echo "$METRICS" >&2
  exit 1
}

# Nine distinct results went through the daemon (selfcheck's three gcc
# cells plus loadgen's three workloads at two rungs), interleaved in the
# write-behind queue with corpus streams and snapshot blobs. Only flushed
# writes are promised to survive a SIGKILL under the default fsync mode,
# so wait until the single FIFO flusher goes quiet (two equal readings at
# or past the result count) before killing the process.
echo "e2e: waiting for the write-behind flush"
i=0
PREV=-1
while true; do
  WRITES=$(curl -fsS "$ADDR/metrics" | sed -n 's/^xbcd_store_writes_total //p')
  [ "${WRITES:-0}" -ge 9 ] && [ "${WRITES:-0}" -eq "$PREV" ] && break
  PREV=${WRITES:-0}
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "e2e: store writes never settled at >=9 (got ${WRITES:-0}); log:" >&2
    cat "$WORK/xbcd.log" >&2
    exit 1
  fi
  sleep 0.2
done

echo "e2e: SIGKILL (no drain) and warm restart on the same store"
kill -9 "$XBCD_PID"
while kill -0 "$XBCD_PID" 2>/dev/null; do sleep 0.1; done
XBCD_PID=

start_xbcd "$WORK/addr2" "$WORK/xbcd2.log"
echo "e2e: restarted xbcd (pid $XBCD_PID) at $ADDR"

echo "e2e: warm sweep — every cell must come back from the store"
SWEEP=$("$WORK/xbcctl" sweep -addr "$ADDR" -fe xbc \
  -traces straightline,loopnest,callheavy,straightline,loopnest,callheavy \
  -budgets 8192 -uops 20000 -wait)
echo "$SWEEP"
echo "$SWEEP" | grep -q 'planned=6 deduped=3 cache_hit=0 store_hit=3 coalesced=0 simulated=0' || {
  echo "e2e: warm sweep was not served from the store" >&2
  exit 1
}

echo "e2e: warm selfcheck — restored metrics must equal a direct local run"
"$WORK/xbcctl" selfcheck -addr "$ADDR" -fe xbc -trace gcc -uops 200000 -core default

echo "e2e: warm loadgen — every submission must be served from the store"
"$WORK/xbcctl" loadgen -addr "$ADDR" -conc 8 -n 24 -uops 20000

echo "e2e: warm sampled loadgen — persisted approximations must be served back"
"$WORK/xbcctl" loadgen -addr "$ADDR" -conc 4 -n 12 -uops 120000 -fidelity sampled

echo "e2e: warm-start metrics — zero re-simulations"
METRICS=$(curl -fsS "$ADDR/metrics")
echo "$METRICS" | grep -q '^xbcd_cache_misses_total 0$' || {
  echo "e2e: warm restart created new jobs (cache misses):" >&2
  echo "$METRICS" >&2
  exit 1
}
if echo "$METRICS" | grep -q 'xbcd_jobs_total{outcome="done"}'; then
  echo "e2e: warm restart re-executed a job:" >&2
  echo "$METRICS" >&2
  exit 1
fi
echo "$METRICS" | grep -q '^xbcd_store_hits_total [1-9]' || {
  echo "e2e: expected store hits after warm restart:" >&2
  echo "$METRICS" >&2
  exit 1
}

echo "e2e: graceful shutdown"
kill -TERM "$XBCD_PID"
i=0
while kill -0 "$XBCD_PID" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 150 ]; then
    echo "e2e: xbcd did not drain within 15s; log:" >&2
    cat "$WORK/xbcd2.log" >&2
    exit 1
  fi
  sleep 0.1
done
XBCD_PID=
grep -q 'drained; bye' "$WORK/xbcd2.log" || {
  echo "e2e: xbcd exited without completing its drain; log:" >&2
  cat "$WORK/xbcd2.log" >&2
  exit 1
}

# ---------------------------------------------------------------------------
# Cluster phase: 3 nodes on one consistent-hash ring (fixed ports derived
# from the pid; -peer-poll is set long so routing never learns about the
# SIGKILL below — every owner-down interaction must take the counted
# fallback path rather than being quietly rerouted by health polling).
# ---------------------------------------------------------------------------
echo "e2e: cluster — starting 3 nodes"
P1=$((10000 + ($$ % 20000))); P2=$((P1 + 1)); P3=$((P1 + 2))
A1="http://127.0.0.1:$P1"; A2="http://127.0.0.1:$P2"; A3="http://127.0.0.1:$P3"
start_xbcd "$WORK/caddr1" "$WORK/cnode1.log" -store "$WORK/cstore1" \
  -addr "127.0.0.1:$P1" -peers "$A2,$A3" -peer-poll 30s
CL_PID1=$XBCD_PID
start_xbcd "$WORK/caddr2" "$WORK/cnode2.log" -store "$WORK/cstore2" \
  -addr "127.0.0.1:$P2" -peers "$A1,$A3" -peer-poll 30s
CL_PID2=$XBCD_PID
start_xbcd "$WORK/caddr3" "$WORK/cnode3.log" -store "$WORK/cstore3" \
  -addr "127.0.0.1:$P3" -peers "$A1,$A2" -peer-poll 30s
CL_PID3=$XBCD_PID
XBCD_PID=
CL_PIDS="$CL_PID1 $CL_PID2 $CL_PID3"
echo "e2e: cluster nodes $CL_PIDS at $A1 $A2 $A3"

curl -fsS "$A1/healthz" | grep -q '"cluster"' || {
  echo "e2e: /healthz carries no cluster ring state" >&2
  exit 1
}

echo "e2e: cluster selfcheck — same job id and bit-identical metrics on every node"
"$WORK/xbcctl" selfcheck -addr "$A1,$A2,$A3" -fe xbc -trace gcc -uops 50000 \
  | tee "$WORK/cselfcheck.out"
[ "$(grep -c 'selfcheck cluster ok' "$WORK/cselfcheck.out")" -eq 2 ] || {
  echo "e2e: cross-node selfcheck did not verify both other endpoints" >&2
  exit 1
}

echo "e2e: cluster sweep — the coordinator dedups, owners simulate once"
SWEEP=$("$WORK/xbcctl" sweep -addr "$A1" -fe xbc \
  -traces gcc,quake,doom,gcc,quake,doom -budgets 8192,16384 -uops 20000 -wait)
echo "$SWEEP"
echo "$SWEEP" | grep -q 'planned=12 deduped=6 cache_hit=0 store_hit=0 coalesced=0 simulated=6' || {
  echo "e2e: distributed sweep plan did not dedup as expected" >&2
  exit 1
}
FW=0
for a in "$A1" "$A2" "$A3"; do
  n=$(curl -fsS "$a/metrics" | sed -n 's/^xbcd_cluster_forwards_total //p')
  FW=$((FW + ${n:-0}))
done
[ "$FW" -ge 1 ] || {
  echo "e2e: no request was ever forwarded between nodes (forwards=$FW)" >&2
  exit 1
}
echo "e2e: cluster forwards=$FW"

echo "e2e: cluster loadgen with a SIGKILL mid-load — zero failed requests"
"$WORK/xbcctl" loadgen -addr "$A1,$A2,$A3" -conc 4 -n 60 -qps 80 -uops 20000 \
  >"$WORK/cloadgen.out" 2>&1 &
LG_PID=$!
sleep 0.3
kill -9 "$CL_PID3"
while kill -0 "$CL_PID3" 2>/dev/null; do sleep 0.05; done
wait "$LG_PID" || {
  echo "e2e: loadgen failed while a node was killed mid-load:" >&2
  cat "$WORK/cloadgen.out" >&2
  exit 1
}
cat "$WORK/cloadgen.out"
grep -q ' 0 failed' "$WORK/cloadgen.out" || {
  echo "e2e: loadgen reported failed requests after the mid-load kill" >&2
  exit 1
}
CL_PIDS="$CL_PID1 $CL_PID2"

echo "e2e: cluster fallback — dead-owner submissions execute locally, counted"
i=0
while :; do
  FB=0
  for a in "$A1" "$A2"; do
    n=$(curl -fsS "$a/metrics" | sed -n 's/^xbcd_cluster_fallbacks_total //p')
    FB=$((FB + ${n:-0}))
  done
  [ "$FB" -ge 1 ] && break
  i=$((i + 1))
  if [ "$i" -gt 30 ]; then
    echo "e2e: no fallback was ever counted with a node dead" >&2
    exit 1
  fi
  # Each distinct spec has a 1-in-3 chance of being owned by the dead
  # node; a handful of submissions makes a fallback all but certain.
  "$WORK/xbcctl" submit -addr "$A1" -fe xbc -trace straightline \
    -uops $((30000 + i)) -wait >/dev/null
done
echo "e2e: cluster fallbacks=$FB (degraded, counted, zero failed requests)"

echo "e2e: cluster shutdown"
kill -TERM "$CL_PID1" "$CL_PID2"
i=0
while kill -0 "$CL_PID1" 2>/dev/null || kill -0 "$CL_PID2" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 150 ]; then
    echo "e2e: cluster nodes did not drain within 15s" >&2
    cat "$WORK/cnode1.log" "$WORK/cnode2.log" >&2
    exit 1
  fi
  sleep 0.1
done
CL_PIDS=
echo "e2e: ok"
