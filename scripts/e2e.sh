#!/usr/bin/env sh
# End-to-end smoke of the serving stack: build xbcd and xbcctl, start
# the daemon on a random port, prove a served job is bit-identical to a
# direct local run (xbcctl selfcheck, which also asserts the second
# submission is a cache hit), push a little concurrent load through it,
# check the Prometheus counters, then SIGTERM and require a clean drain
# within a bounded time. Used by `make e2e` and the CI e2e job.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
XBCD_PID=
trap 'status=$?
  [ -n "$XBCD_PID" ] && kill "$XBCD_PID" 2>/dev/null || true
  rm -rf "$WORK"
  exit $status' EXIT INT TERM

echo "e2e: building xbcd and xbcctl"
$GO build -o "$WORK/xbcd" ./cmd/xbcd
$GO build -o "$WORK/xbcctl" ./cmd/xbcctl

"$WORK/xbcd" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
  -drain-journal "$WORK/drain.json" >"$WORK/xbcd.log" 2>&1 &
XBCD_PID=$!

# Wait (max ~5s) for the daemon to write its bound address.
i=0
while [ ! -s "$WORK/addr" ]; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "e2e: xbcd never wrote its address; log:" >&2
    cat "$WORK/xbcd.log" >&2
    exit 1
  fi
  kill -0 "$XBCD_PID" 2>/dev/null || {
    echo "e2e: xbcd exited early; log:" >&2
    cat "$WORK/xbcd.log" >&2
    exit 1
  }
  sleep 0.1
done
ADDR="http://$(cat "$WORK/addr")"
echo "e2e: xbcd (pid $XBCD_PID) at $ADDR"

echo "e2e: selfcheck — served metrics must equal a direct local run"
"$WORK/xbcctl" selfcheck -addr "$ADDR" -fe xbc -trace gcc -uops 200000 -core default

echo "e2e: loadgen — 8 concurrent submitters"
"$WORK/xbcctl" loadgen -addr "$ADDR" -conc 8 -n 24 -uops 20000

echo "e2e: metrics sanity"
METRICS=$(curl -fsS "$ADDR/metrics")
echo "$METRICS" | grep -q '^xbcd_cache_hits_total [1-9]' || {
  echo "e2e: expected cache hits in /metrics:" >&2
  echo "$METRICS" >&2
  exit 1
}
echo "$METRICS" | grep -q 'xbcd_jobs_total{outcome="done"}' || {
  echo "e2e: expected completed jobs in /metrics:" >&2
  echo "$METRICS" >&2
  exit 1
}

echo "e2e: graceful shutdown"
kill -TERM "$XBCD_PID"
i=0
while kill -0 "$XBCD_PID" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 150 ]; then
    echo "e2e: xbcd did not drain within 15s; log:" >&2
    cat "$WORK/xbcd.log" >&2
    exit 1
  fi
  sleep 0.1
done
XBCD_PID=
grep -q 'drained; bye' "$WORK/xbcd.log" || {
  echo "e2e: xbcd exited without completing its drain; log:" >&2
  cat "$WORK/xbcd.log" >&2
  exit 1
}
echo "e2e: ok"
