# Convenience targets; everything is plain `go` underneath.

GO ?= go

# Where `make bench` records the frontend benchmark numbers; diff two
# recordings with `make bench-compare OLD=... NEW=...`.
BENCH_OUT ?= BENCH_PR2.json

.PHONY: all check build test vet race bench bench-smoke bench-compare experiments calibrate fuzz clean

all: check

# The verification gate: build, vet, the full suite under the race
# detector, a one-iteration pass over every benchmark (so a broken bench
# cannot rot unnoticed), and a short fuzz pass over the .xtr parser.
check: build vet race bench-smoke
	$(GO) test ./internal/trace -fuzz FuzzRead -fuzztime 10s

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Frontend throughput + allocation benchmarks, recorded as JSON for
# regression tracking (uops/s and allocs/op per frontend).
bench:
	$(GO) run ./cmd/benchjson -bench 'BenchmarkFrontend' -benchtime 5x -o $(BENCH_OUT)

# One iteration of every benchmark: a compile-and-run smoke, not a timing.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Diff two `make bench` recordings; fails on >10% allocs/op growth.
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(OLD) $(NEW)

# Full reproduction of the paper's figures and the extension studies.
experiments:
	$(GO) run ./cmd/experiments -fig all -extra all -uops 2000000 -plot

calibrate:
	$(GO) run ./cmd/calibrate

fuzz:
	$(GO) test ./internal/trace -fuzz FuzzRead -fuzztime 30s

clean:
	$(GO) clean ./...
