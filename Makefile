# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build test vet race bench experiments calibrate fuzz clean

all: check

# The verification gate: build, vet, the full suite under the race
# detector, and a short fuzz pass over the .xtr parser.
check: build vet race
	$(GO) test ./internal/trace -fuzz FuzzRead -fuzztime 10s

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Full reproduction of the paper's figures and the extension studies.
experiments:
	$(GO) run ./cmd/experiments -fig all -extra all -uops 2000000 -plot

calibrate:
	$(GO) run ./cmd/calibrate

fuzz:
	$(GO) test ./internal/trace -fuzz FuzzRead -fuzztime 30s

clean:
	$(GO) clean ./...
