# Convenience targets; everything is plain `go` underneath.

GO ?= go

# Where `make bench` records the frontend benchmark numbers. The checked-in
# baselines are BENCH_SEED.json (the original tree), BENCH_PR2.json (the
# allocation-free frontends) and BENCH_PR4.json (the arena-backed storage);
# record the working tree into BENCH_CURRENT.json and diff against a
# baseline:
#
#	make bench                                        # writes BENCH_CURRENT.json
#	make bench-compare OLD=BENCH_PR2.json NEW=BENCH_CURRENT.json
#	make bench-gate                                   # record + gate vs BENCH_PR4.json
#
BENCH_OUT ?= BENCH_CURRENT.json

# The throughput floor `make bench-gate` enforces against the checked-in
# baseline. Wider than the default 10% because CI runners (and this
# benchmark's 5-iteration budget) are noisy; the gate is for cliffs, not
# jitter.
MAXSLOW ?= 35

.PHONY: all check build test vet lint lint-flow lint-sarif race bench bench-smoke bench-compare bench-gate bench-sweep bench-fidelity bench-profile experiments calibrate fuzz serve e2e clean

all: check

# The verification gate: build, vet, the project linters, the full suite
# under the race detector, a one-iteration pass over every benchmark (so a
# broken bench cannot rot unnoticed), and a short fuzz pass over the .xtr
# parser.
check: build vet lint race bench-smoke
	$(GO) test ./internal/trace -fuzz FuzzRead -fuzztime 10s
	$(GO) test ./internal/store -fuzz FuzzScanRecords -fuzztime 10s
	$(GO) test ./internal/store -fuzz FuzzOpen -fuzztime 10s

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (cmd/xbclint): determinism, hot-loop
# allocation discipline, enum exhaustiveness, dropped errors, float
# comparisons, and the flow-sensitive concurrency suite (lockorder,
# ctxflow, goroleak, atomicmix). `go run ./cmd/xbclint -list` describes
# the analyzers; suppress a finding with `//xbc:ignore <analyzer> <reason>`.
lint:
	$(GO) run ./cmd/xbclint ./...

# Just the flow-sensitive concurrency analyzers, for focused runs while
# working on locking or goroutine code.
lint-flow:
	$(GO) run ./cmd/xbclint -run lockorder,ctxflow,goroleak,atomicmix ./...

# Machine-readable findings (suppressed ones included) for code-scanning
# upload; never fails the build by itself — `lint` is the gate.
lint-sarif:
	$(GO) run ./cmd/xbclint -sarif ./... > xbclint.sarif || true

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Frontend throughput + allocation benchmarks, recorded as JSON for
# regression tracking (uops/s and allocs/op per frontend).
bench:
	$(GO) run ./cmd/benchjson -bench 'BenchmarkFrontend' -benchtime 5x -o $(BENCH_OUT)

# One iteration of every benchmark: a compile-and-run smoke, not a timing.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Diff two `make bench` recordings; fails on >10% allocs/op growth or
# >10% uops/s slowdown.
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(OLD) $(NEW)

# The speed floor: record the working tree and gate it against the
# checked-in PR 4 baseline — any frontend losing more than MAXSLOW% of
# its recorded uops/s (or growing allocs/op past 10%) fails the build.
bench-gate: bench
	$(GO) run ./cmd/benchjson -compare -maxslow $(MAXSLOW) BENCH_PR4.json $(BENCH_OUT)

# Sweep-planner reuse benchmark: a 90%-duplicate 100-cell grid through
# the naive path vs planner.Run, recording wall time and the custom
# simcells/op metric (simulations actually executed per sweep). Gated
# against the checked-in PR 7 baseline — simulated cells must never grow.
bench-sweep:
	$(GO) run ./cmd/benchjson -pkg ./internal/planner -bench 'BenchmarkSweep' -benchtime 3x -o BENCH_SWEEP_CURRENT.json
	$(GO) run ./cmd/benchjson -compare -maxslow $(MAXSLOW) BENCH_PR7.json BENCH_SWEEP_CURRENT.json

# Fidelity-ladder benchmark: one cell (gcc, 1M uops) at full, sampled,
# and estimate fidelity, recording effective uops/s and the deterministic
# simuops/op metric (uops simulated in detail). Gated against the
# checked-in PR 9 baseline: the sampled rung must stay at or under 10% of
# the full run's uops (asserted inside the benchmark itself) and must
# never simulate more uops than the recorded baseline.
bench-fidelity:
	$(GO) run ./cmd/benchjson -pkg ./internal/service/jobspec -bench 'BenchmarkFidelity' -benchtime 3x -o BENCH_FIDELITY_CURRENT.json
	$(GO) run ./cmd/benchjson -compare -maxslow $(MAXSLOW) BENCH_PR9.json BENCH_FIDELITY_CURRENT.json

# Two-command profiling flow (see README): record a CPU profile of the
# XBC frontend benchmark, then open the interactive pprof viewer on it.
bench-profile:
	$(GO) test -run '^$$' -bench 'BenchmarkFrontendXBC$$' -benchtime 150x -cpuprofile cpu.prof -o xbc-bench.test .
	@echo "profile written: inspect with '$(GO) tool pprof xbc-bench.test cpu.prof'"

# Full reproduction of the paper's figures and the extension studies.
experiments:
	$(GO) run ./cmd/experiments -fig all -extra all -uops 2000000 -plot

calibrate:
	$(GO) run ./cmd/calibrate

fuzz:
	$(GO) test ./internal/trace -fuzz FuzzRead -fuzztime 30s
	$(GO) test ./internal/store -fuzz FuzzScanRecords -fuzztime 30s
	$(GO) test ./internal/store -fuzz FuzzReadExport -fuzztime 30s
	$(GO) test ./internal/store -fuzz FuzzOpen -fuzztime 30s
	$(GO) test ./internal/store -fuzz FuzzPutGet -fuzztime 30s

# The simulation daemon on :8321 (see the README's Serving section and
# docs/ARCHITECTURE.md). SIGTERM/Ctrl-C drains gracefully.
serve:
	$(GO) run ./cmd/xbcd

# End-to-end smoke of the serving stack: random port, xbcctl selfcheck
# (served metrics bit-identical to a direct run, resubmission cached),
# concurrent loadgen, Prometheus counter checks, clean SIGTERM drain.
e2e:
	sh ./scripts/e2e.sh

clean:
	$(GO) clean ./...
