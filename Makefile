# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench experiments calibrate fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Full reproduction of the paper's figures and the extension studies.
experiments:
	$(GO) run ./cmd/experiments -fig all -extra all -uops 2000000 -plot

calibrate:
	$(GO) run ./cmd/calibrate

fuzz:
	$(GO) test ./internal/trace -fuzz FuzzRead -fuzztime 30s

clean:
	$(GO) clean ./...
